//! The sweep checkpoint journal: crash-safe, bit-exact resume for
//! long-running latency-throughput sweeps.
//!
//! A sweep campaign can run for hours; a crash (or a `kill -9`) near the
//! end used to discard every completed point. The journal makes completed
//! points durable: as each sweep point finishes, one line is appended to a
//! plain-text journal file and `fsync`'d before the job reports success.
//! Re-running the same sweep with the same journal path skips the recorded
//! points and re-runs only the missing ones — and because each point's
//! seed is a pure function of `(base seed, index)` and the recorded values
//! round-trip through exact bit patterns, a resumed sweep's outputs are
//! **bit-identical** to an uninterrupted run at any thread count.
//!
//! # Format
//!
//! Line-oriented text, one record per line, no external dependencies:
//!
//! ```text
//! footprint-sweep-v1 seed=000000000000f007 rates=3fa999999999999a,3fc3333333333333
//! point 0 3fa999999999999a 3fa95810624dd2f2 4028f5c28f5c28f6
//! point 1 3fc3333333333333 3fc30a3d70a3d70a 402e147ae147ae14
//! ```
//!
//! * The header binds the journal to the sweep's base seed and exact rate
//!   grid (`f64::to_bits` hex). A journal from a *different* sweep is a
//!   hard error, never silently merged.
//! * Each `point` line records `index offered accepted latency`, all three
//!   values as `f64` bit patterns, so restored points compare equal to the
//!   freshly-computed ones down to the last bit.
//! * A torn final line (the crash happened mid-append) is ignored on
//!   replay; anything malformed *before* the final line means real
//!   corruption and is reported as an error.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use footprint_stats::{SweepPoint, SweepProgress};

/// Magic + version tag of the journal header line.
const HEADER_TAG: &str = "footprint-sweep-v1";

/// A sweep checkpoint journal bound to one `(seed, rates)` campaign.
///
/// Obtained through [`SweepJournal::open`]; the completed-point map it
/// restores is consumed by `SimulationBuilder::sweep_with` when
/// `SweepOptions::checkpoint` is set.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: File,
    total: usize,
    restored: usize,
    completed: BTreeMap<usize, SweepPoint>,
}

impl SweepJournal {
    /// Opens (or creates) the journal at `path` for a sweep of `rates`
    /// seeded with `seed`.
    ///
    /// A fresh file gets the header written and synced immediately. An
    /// existing file is validated against `(seed, rates)` and its recorded
    /// points are restored; a torn trailing line is dropped.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the file cannot be opened or
    /// synced, when the header belongs to a different campaign, or when a
    /// non-trailing line is corrupt.
    pub fn open(path: &Path, seed: u64, rates: &[f64]) -> Result<Self, String> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open checkpoint journal {}: {e}", path.display()))?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)
            .map_err(|e| format!("cannot read checkpoint journal {}: {e}", path.display()))?;
        let mut journal = SweepJournal {
            path: path.to_path_buf(),
            file,
            total: rates.len(),
            restored: 0,
            completed: BTreeMap::new(),
        };
        if contents.is_empty() {
            let header = Self::header_line(seed, rates);
            journal.append_line(&header)?;
            return Ok(journal);
        }
        journal.replay(&contents, seed, rates)?;
        journal.restored = journal.completed.len();
        Ok(journal)
    }

    fn header_line(seed: u64, rates: &[f64]) -> String {
        let mut line = format!("{HEADER_TAG} seed={seed:016x} rates=");
        for (i, r) in rates.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{:016x}", r.to_bits());
        }
        line
    }

    /// Validates the header and restores the recorded points from a
    /// non-empty journal body.
    fn replay(&mut self, contents: &str, seed: u64, rates: &[f64]) -> Result<(), String> {
        let display = self.path.display();
        let lines: Vec<&str> = contents.split('\n').collect();
        let last_complete = contents.ends_with('\n');
        // With a trailing newline the final split element is "", so the
        // last *candidate* record is lines[len-2]; without one, the final
        // element itself is the torn candidate.
        let records = if last_complete {
            &lines[..lines.len().saturating_sub(1)]
        } else {
            &lines[..]
        };
        let expected_header = Self::header_line(seed, rates);
        for (lineno, line) in records.iter().enumerate() {
            let torn_candidate = !last_complete && lineno == records.len() - 1;
            if lineno == 0 {
                if *line != expected_header {
                    return Err(format!(
                        "checkpoint journal {display} belongs to a different sweep \
                         (header mismatch): refusing to resume. Delete the file to \
                         start over, or point the sweep at a fresh journal path."
                    ));
                }
                continue;
            }
            match Self::parse_point(line, rates) {
                Some((index, point)) => {
                    self.completed.insert(index, point);
                }
                None if torn_candidate => {
                    // A crash mid-append leaves a truncated last line; the
                    // point it was recording simply re-runs.
                }
                None => {
                    return Err(format!(
                        "checkpoint journal {display} is corrupt at line {}: {line:?}",
                        lineno + 1
                    ));
                }
            }
        }
        Ok(())
    }

    /// Parses one `point <index> <offered> <accepted> <latency>` record.
    /// Returns `None` on any malformation, including an index outside the
    /// rate grid or an offered-load bit pattern that does not match the
    /// grid (both mean the journal is not from this sweep).
    fn parse_point(line: &str, rates: &[f64]) -> Option<(usize, SweepPoint)> {
        let mut parts = line.split(' ');
        if parts.next()? != "point" {
            return None;
        }
        let index: usize = parts.next()?.parse().ok()?;
        let offered = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
        let accepted = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
        let latency = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
        if parts.next().is_some() {
            return None;
        }
        if rates.get(index)?.to_bits() != offered.to_bits() {
            return None;
        }
        Some((
            index,
            SweepPoint {
                offered,
                accepted,
                latency,
            },
        ))
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        let display = self.path.display();
        self.file
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("cannot append to checkpoint journal {display}: {e}"))?;
        // Durability is the whole point: the record must survive a
        // `kill -9` the instant after the job reports completion.
        self.file
            .sync_data()
            .map_err(|e| format!("cannot sync checkpoint journal {display}: {e}"))
    }

    /// Records sweep point `index` as completed, fsync'd before return.
    ///
    /// # Errors
    ///
    /// Returns a message when the append or sync fails (the sweep treats
    /// this as fatal: continuing would silently lose crash safety).
    pub fn record(&mut self, index: usize, point: &SweepPoint) -> Result<(), String> {
        let line = format!(
            "point {index} {:016x} {:016x} {:016x}",
            point.offered.to_bits(),
            point.accepted.to_bits(),
            point.latency.to_bits()
        );
        self.append_line(&line)?;
        self.completed.insert(index, *point);
        Ok(())
    }

    /// The points restored from disk plus those recorded this run, keyed
    /// by sweep index (ascending — i.e. ascending offered load).
    pub fn completed(&self) -> &BTreeMap<usize, SweepPoint> {
        &self.completed
    }

    /// Progress accounting: total grid size, completed points, and how
    /// many of those were restored from disk rather than computed by this
    /// process.
    pub fn progress(&self) -> SweepProgress {
        SweepProgress {
            total: self.total,
            completed: self.completed.len(),
            resumed: self.restored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("footprint-journal-test-{}-{name}", std::process::id()));
        p
    }

    fn point(offered: f64) -> SweepPoint {
        SweepPoint {
            offered,
            accepted: offered * 0.96,
            latency: 12.75,
        }
    }

    #[test]
    fn fresh_journal_roundtrips_points_bit_exactly() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let rates = [0.05, 0.15, 0.25];
        {
            let mut j = SweepJournal::open(&path, 0xF007, &rates).unwrap();
            assert!(j.completed().is_empty());
            j.record(0, &point(0.05)).unwrap();
            j.record(2, &point(0.25)).unwrap();
        }
        let j = SweepJournal::open(&path, 0xF007, &rates).unwrap();
        assert_eq!(j.completed().len(), 2);
        assert_eq!(j.completed()[&0], point(0.05));
        assert_eq!(j.completed()[&2], point(0.25));
        let progress = j.progress();
        assert_eq!(progress.total, 3);
        assert_eq!(progress.completed, 2);
        assert_eq!(progress.resumed, 2);
        assert!(!progress.is_complete());
        assert_eq!(progress.remaining(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_campaign_is_refused() {
        let path = tmp("mismatch");
        let _ = std::fs::remove_file(&path);
        let rates = [0.05, 0.15];
        drop(SweepJournal::open(&path, 1, &rates).unwrap());
        // Different seed.
        let err = SweepJournal::open(&path, 2, &rates).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        // Different rate grid.
        let err = SweepJournal::open(&path, 1, &[0.05, 0.20]).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_but_midfile_corruption_is_fatal() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let rates = [0.05, 0.15];
        {
            let mut j = SweepJournal::open(&path, 9, &rates).unwrap();
            j.record(0, &point(0.05)).unwrap();
        }
        // Simulate a crash mid-append: a truncated record with no newline.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"point 1 3fc333").unwrap();
        }
        let j = SweepJournal::open(&path, 9, &rates).unwrap();
        assert_eq!(j.completed().len(), 1, "torn tail ignored, point 0 kept");
        // Now corrupt a *complete* line in the middle: that is real
        // corruption, not a torn append.
        std::fs::write(
            &path,
            format!(
                "{}\ngarbage line\npoint 0 {:016x} {:016x} {:016x}\n",
                SweepJournal::header_line(9, &rates),
                0.05f64.to_bits(),
                0.04f64.to_bits(),
                10.0f64.to_bits()
            ),
        )
        .unwrap();
        let err = SweepJournal::open(&path, 9, &rates).unwrap_err();
        assert!(err.contains("corrupt at line 2"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn point_records_from_a_different_grid_are_rejected() {
        let rates = [0.05, 0.15];
        // Offered bits must match the grid entry at the index.
        let line = format!(
            "point 1 {:016x} {:016x} {:016x}",
            0.10f64.to_bits(),
            0.09f64.to_bits(),
            11.0f64.to_bits()
        );
        assert!(SweepJournal::parse_point(&line, &rates).is_none());
        // Index out of range.
        let line = format!(
            "point 7 {:016x} {:016x} {:016x}",
            0.05f64.to_bits(),
            0.04f64.to_bits(),
            11.0f64.to_bits()
        );
        assert!(SweepJournal::parse_point(&line, &rates).is_none());
    }
}
