//! Named workload configurations.

use core::fmt;
use footprint_sim::Workload;
use footprint_topology::AnyTopology;
use footprint_traffic::{
    App, HotspotWorkload, PacketSize, ParsecPairWorkload, PatternError, PatternSpec, Permutation,
    SyntheticWorkload,
};

/// A named workload, buildable into a `footprint-sim` [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficSpec {
    /// Uniform random (Figures 5–8).
    UniformRandom,
    /// Transpose (Figures 5–8).
    Transpose,
    /// Shuffle (Figures 5–8).
    Shuffle,
    /// Bit complement (extra).
    BitComplement,
    /// Bit reverse (extra).
    BitReverse,
    /// Tornado (extra).
    Tornado,
    /// The Table 3 hotspot + background workload (Figure 9). The builder's
    /// injection rate drives the *hotspot* flows; the background runs at
    /// the fixed rate given here (0.30 in the paper).
    Hotspot {
        /// Background (uniform-random) injection rate, flits/node/cycle.
        background_rate: f64,
    },
    /// Two PARSEC-like applications run simultaneously (Figure 10). The
    /// builder's injection rate is ignored; the per-application profiles
    /// set the load.
    ParsecPair(App, App),
    /// The four-flow permutation of the paper's Figure 2
    /// (`{n0→n10, n1→n15, n4→n13, n12→n13}` on a ≥4×4 mesh).
    Figure2,
}

impl TrafficSpec {
    /// The paper's Figure 9 hotspot configuration.
    pub const PAPER_HOTSPOT: TrafficSpec = TrafficSpec::Hotspot {
        background_rate: 0.30,
    };

    /// Builds the workload for `topo` at the given offered load
    /// (flits/node/cycle) and packet-size mix.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] when the underlying pattern is not
    /// defined on `topo` (the bit-manipulating patterns need a
    /// power-of-two node count).
    pub fn build(
        self,
        topo: impl Into<AnyTopology>,
        size: PacketSize,
        rate: f64,
    ) -> Result<Box<dyn Workload>, PatternError> {
        let topo = topo.into();
        let synthetic = |pattern: PatternSpec| -> Result<Box<dyn Workload>, PatternError> {
            Ok(Box::new(SyntheticWorkload::new(
                topo,
                pattern.build_for(topo)?,
                size,
                rate,
            )))
        };
        match self {
            TrafficSpec::UniformRandom => synthetic(PatternSpec::Uniform),
            TrafficSpec::Transpose => synthetic(PatternSpec::Transpose),
            TrafficSpec::Shuffle => synthetic(PatternSpec::Shuffle),
            TrafficSpec::BitComplement => synthetic(PatternSpec::BitComplement),
            TrafficSpec::BitReverse => synthetic(PatternSpec::BitReverse),
            TrafficSpec::Tornado => synthetic(PatternSpec::Tornado),
            TrafficSpec::Hotspot { background_rate } => Ok(Box::new(HotspotWorkload::new(
                topo,
                footprint_traffic::paper_flows(),
                rate,
                background_rate,
                size,
            ))),
            TrafficSpec::ParsecPair(a, b) => Ok(Box::new(ParsecPairWorkload::new(topo, a, b))),
            TrafficSpec::Figure2 => Ok(Box::new(SyntheticWorkload::new(
                topo,
                Box::new(Permutation::figure2_example(topo)),
                size,
                rate,
            ))),
        }
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            TrafficSpec::UniformRandom => "uniform".into(),
            TrafficSpec::Transpose => "transpose".into(),
            TrafficSpec::Shuffle => "shuffle".into(),
            TrafficSpec::BitComplement => "bit-complement".into(),
            TrafficSpec::BitReverse => "bit-reverse".into(),
            TrafficSpec::Tornado => "tornado".into(),
            TrafficSpec::Hotspot { .. } => "hotspot".into(),
            TrafficSpec::ParsecPair(a, b) => format!("{}+{}", a.name(), b.name()),
            TrafficSpec::Figure2 => "figure2-permutation".into(),
        }
    }

    /// `true` when the built workload keeps no state of its own — every
    /// packet decision is drawn from the shared simulation RNG, which the
    /// warm-start snapshot captures exactly. [`TrafficSpec::ParsecPair`]
    /// is the exception: its burst schedule lives inside the workload
    /// object, outside the snapshot, so a restored run could not replay
    /// it faithfully.
    pub fn stateless_workload(self) -> bool {
        !matches!(self, TrafficSpec::ParsecPair(..))
    }

    /// The three synthetic patterns of Figures 5–8.
    pub const PAPER_PATTERNS: [TrafficSpec; 3] = [
        TrafficSpec::UniformRandom,
        TrafficSpec::Transpose,
        TrafficSpec::Shuffle,
    ];
}

impl fmt::Display for TrafficSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// One tenant of a multi-tenant run: a named [`TrafficSpec`] with its own
/// offered load and optional modulation schedule
/// ([`footprint_traffic::ModulationSpec`]).
///
/// Passed to `SimulationBuilder::tenants`; the tenant's traffic class is
/// its index in that list, which is also the key for the per-tenant
/// summaries in `RunReport::tenants`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name, carried into the per-tenant summary.
    pub name: String,
    /// The tenant's workload.
    pub traffic: TrafficSpec,
    /// The tenant's offered load in flits/node/cycle (the builder-level
    /// injection rate is ignored when tenants are configured).
    pub rate: f64,
    /// Time-varying injection schedule (default
    /// [`footprint_traffic::ModulationSpec::Steady`]).
    pub modulation: footprint_traffic::ModulationSpec,
}

impl TenantSpec {
    /// Creates a steady tenant.
    pub fn new(name: impl Into<String>, traffic: TrafficSpec, rate: f64) -> Self {
        TenantSpec {
            name: name.into(),
            traffic,
            rate,
            modulation: footprint_traffic::ModulationSpec::Steady,
        }
    }

    /// Applies a modulation schedule to this tenant.
    #[must_use]
    pub fn modulation(mut self, spec: footprint_traffic::ModulationSpec) -> Self {
        self.modulation = spec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::{Mesh, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_specs_build_and_generate() {
        let mesh = Mesh::square(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let specs = [
            TrafficSpec::UniformRandom,
            TrafficSpec::Transpose,
            TrafficSpec::Shuffle,
            TrafficSpec::BitComplement,
            TrafficSpec::BitReverse,
            TrafficSpec::Tornado,
            TrafficSpec::PAPER_HOTSPOT,
            TrafficSpec::ParsecPair(App::Fluidanimate, App::X264),
        ];
        for spec in specs {
            let mut wl = spec.build(mesh, PacketSize::SINGLE, 0.8).unwrap();
            let mut generated = false;
            for cycle in 0..2000 {
                for n in mesh.nodes() {
                    if wl.generate(n, cycle, &mut rng).is_some() {
                        generated = true;
                    }
                }
                if generated {
                    break;
                }
            }
            assert!(generated, "{} produced no packets", spec.name());
        }
    }

    #[test]
    fn figure2_runs_on_4x4() {
        let mesh = Mesh::square(4);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut wl = TrafficSpec::Figure2.build(mesh, PacketSize::SINGLE, 1.0).unwrap();
        let p = wl.generate(NodeId(0), 0, &mut rng).unwrap();
        assert_eq!(p.dest, NodeId(10));
    }

    #[test]
    fn bit_patterns_rejected_on_non_power_of_two_mesh() {
        let odd = Mesh::square(6);
        for spec in [
            TrafficSpec::Shuffle,
            TrafficSpec::BitComplement,
            TrafficSpec::BitReverse,
        ] {
            let err = spec
                .build(odd, PacketSize::SINGLE, 0.5)
                .err()
                .expect("6x6 must be rejected");
            assert_eq!(err.nodes, 36);
        }
        assert!(TrafficSpec::UniformRandom
            .build(odd, PacketSize::SINGLE, 0.5)
            .is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TrafficSpec::UniformRandom.name(), "uniform");
        assert_eq!(
            TrafficSpec::ParsecPair(App::Vips, App::Dedup).name(),
            "vips+dedup"
        );
        assert_eq!(TrafficSpec::PAPER_HOTSPOT.to_string(), "hotspot");
        assert_eq!(TrafficSpec::PAPER_PATTERNS.len(), 3);
    }
}
