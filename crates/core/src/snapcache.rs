//! On-disk warm-start snapshot cache.
//!
//! A snapshot stores the complete post-warmup state of a network (see
//! `footprint_sim::Network::snapshot`) keyed by a canonical description of
//! everything that influences that state: topology, router geometry,
//! routing algorithm, traffic, packet-size mix, injection rate, seed,
//! warmup length and scheduler. The rate and seed are deliberately **in**
//! the key — warmup is rate-coupled (the congestion pattern at cycle
//! `warmup` depends on the offered load) and the RNG stream is
//! seed-coupled, so sharing a snapshot across either would silently trade
//! bit-identity for hit rate. A cache hit therefore resumes the *exact*
//! run that produced it.
//!
//! Files are written atomically (temp file + rename) and verified on read:
//! the first line must echo the full key, so a hash collision or a stale
//! file from an older layout degrades to a cache miss, never a wrong
//! restore. All failures are soft — a broken cache only costs the warmup.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over the canonical key; names the cache file.
fn fnv64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn path_for(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("warmup-{:016x}.snap", fnv64(key)))
}

/// Loads the snapshot bytes for `key`, or `None` on any miss: no file,
/// unreadable file, or a file whose embedded key line does not match.
pub(crate) fn load(dir: &Path, key: &str) -> Option<Vec<u8>> {
    let bytes = fs::read(path_for(dir, key)).ok()?;
    let mut split = bytes.splitn(2, |&b| b == b'\n');
    let stored_key = split.next()?;
    let body = split.next()?;
    if stored_key != key.as_bytes() {
        return None;
    }
    Some(body.to_vec())
}

/// Stores `body` under `key`, best-effort: creates `dir` if needed, writes
/// to a temp file and renames into place so concurrent sweep workers never
/// observe a half-written snapshot. Errors are swallowed — the cache is an
/// accelerator, not a correctness dependency.
pub(crate) fn store(dir: &Path, key: &str, body: &[u8]) {
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let fin = path_for(dir, key);
    let tmp = fin.with_extension(format!("tmp.{}", std::process::id()));
    let write = |p: &Path| -> std::io::Result<()> {
        let mut f = fs::File::create(p)?;
        f.write_all(key.as_bytes())?;
        f.write_all(b"\n")?;
        f.write_all(body)?;
        f.sync_all()
    };
    if write(&tmp).is_ok() {
        let _ = fs::rename(&tmp, &fin);
    }
    let _ = fs::remove_file(&tmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_key_mismatch() {
        let dir = std::env::temp_dir().join(format!("footprint-snapcache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(load(&dir, "k1"), None, "empty cache misses");
        store(&dir, "k1", b"payload\x00with\nbytes");
        assert_eq!(load(&dir, "k1").as_deref(), Some(&b"payload\x00with\nbytes"[..]));
        assert_eq!(load(&dir, "k2"), None, "different key misses");
        // A colliding filename with the wrong embedded key degrades to a miss.
        fs::write(path_for(&dir, "k3"), b"not-k3\njunk").unwrap();
        assert_eq!(load(&dir, "k3"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so cache files survive across builds of the same layout.
        assert_eq!(fnv64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64("footprint"), fnv64("footprint"));
        assert_ne!(fnv64("a"), fnv64("b"));
    }
}
