//! Property tests over the routing algorithms: minimality, escape-network
//! reachability, and request-set well-formedness under arbitrary VC states.

use footprint_routing::{
    AllLinksUp, NoCongestionInfo, Priority, RoutingCtx, RoutingSpec, TablePortView, VcId, VcView,
};
use footprint_topology::{Mesh, NodeId, Port, DIRECTIONS};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = RoutingSpec> {
    prop_oneof![
        Just(RoutingSpec::Footprint),
        Just(RoutingSpec::Dbar),
        Just(RoutingSpec::OddEven),
        Just(RoutingSpec::Dor),
        Just(RoutingSpec::DorXordet),
        Just(RoutingSpec::OddEvenXordet),
        Just(RoutingSpec::DbarXordet),
        Just(RoutingSpec::RandomMinimal),
    ]
}

/// An arbitrary port-state table: every VC independently idle/busy with a
/// random owner and credits.
fn arb_view(num_vcs: usize) -> impl Strategy<Value = TablePortView> {
    prop::collection::vec(
        (any::<bool>(), 0u16..64, 0u32..=4, any::<bool>()),
        footprint_topology::PORT_COUNT * num_vcs,
    )
    .prop_map(move |cells| {
        let mut view = TablePortView::new(num_vcs);
        let mut it = cells.into_iter();
        for p in 0..footprint_topology::PORT_COUNT {
            for v in 0..num_vcs {
                let (idle, owner, credits, joinable) = it.next().unwrap();
                view.set(
                    Port::from_index(p),
                    VcId(v as u8),
                    VcView {
                        idle,
                        owner: if idle { None } else { Some(NodeId(owner)) },
                        credits,
                        joinable: joinable && !idle,
                    },
                );
            }
        }
        view
    })
}

proptest! {
    /// All requested direction ports are minimal (productive) ports, and
    /// requested VCs are within range. At the destination, only the local
    /// port is requested.
    #[test]
    fn requests_are_minimal_and_well_formed(
        spec in arb_spec(),
        view in arb_view(6),
        cur in 0u16..64,
        src in 0u16..64,
        dest in 0u16..64,
        seed in 0u64..64,
        on_escape in any::<bool>(),
    ) {
        let mesh = Mesh::square(8);
        let algo = spec.build();
        let ctx = RoutingCtx {
            topo: mesh.into(),
            current: NodeId(cur),
            src: NodeId(src),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: on_escape && algo.has_escape(),
            num_vcs: 6,
            ports: &view,
            congestion: &NoCongestionInfo,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        prop_assert!(!out.is_empty(), "{}: empty request set", spec.name());
        let minimal = mesh.minimal_dirs(NodeId(cur), NodeId(dest));
        for req in &out {
            prop_assert!(req.vc.index() < 6, "{}: vc out of range", spec.name());
            match req.port {
                Port::Local => prop_assert_eq!(
                    cur, dest,
                    "{}: local port requested away from destination", spec.name()
                ),
                Port::Dir(d) => {
                    prop_assert!(
                        minimal.contains(d),
                        "{}: non-minimal direction {} for {}→{} at {}",
                        spec.name(), d, src, dest, cur
                    );
                }
            }
        }
    }

    /// Duato-based algorithms always keep the escape network reachable: an
    /// in-flight packet's request set contains the escape VC on the
    /// dimension-order port (the deadlock-freedom invariant).
    #[test]
    fn escape_network_always_requested(
        view in arb_view(6),
        cur in 0u16..64,
        dest in 0u16..64,
        seed in 0u64..64,
    ) {
        prop_assume!(cur != dest);
        let mesh = Mesh::square(8);
        for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::DbarXordet] {
            let algo = spec.build();
            let ctx = RoutingCtx {
                topo: mesh.into(),
                current: NodeId(cur),
                src: NodeId(cur),
                dest: NodeId(dest),
                input_port: Port::Local,
                input_vc: VcId(1),
                on_escape: false,
                num_vcs: 6,
                ports: &view,
                congestion: &NoCongestionInfo,
                links: &AllLinksUp,
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            algo.route(&ctx, &mut rng, &mut out);
            let escape = out.iter().find(|r| r.vc == VcId::ESCAPE);
            prop_assert!(escape.is_some(), "{}: no escape request", spec.name());
            let escape = escape.unwrap();
            prop_assert_eq!(escape.priority, Priority::Lowest);
            // Escape port = dimension order: X first.
            let dirs = mesh.minimal_dirs(NodeId(cur), NodeId(dest));
            let esc_dir = dirs.x.or(dirs.y).unwrap();
            prop_assert_eq!(escape.port, Port::Dir(esc_dir), "{}", spec.name());
        }
    }

    /// Footprint never requests the escape VC as an adaptive VC: VC 0 only
    /// ever appears as the dimension-order escape request.
    #[test]
    fn escape_vc_reserved(
        view in arb_view(6),
        cur in 0u16..64,
        dest in 0u16..64,
        seed in 0u64..64,
    ) {
        prop_assume!(cur != dest);
        let mesh = Mesh::square(8);
        let algo = RoutingSpec::Footprint.build();
        let ctx = RoutingCtx {
            topo: mesh.into(),
            current: NodeId(cur),
            src: NodeId(cur),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(2),
            on_escape: false,
            num_vcs: 6,
            ports: &view,
            congestion: &NoCongestionInfo,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        for req in out.iter().filter(|r| r.vc == VcId::ESCAPE) {
            prop_assert_eq!(req.priority, Priority::Lowest);
        }
    }

    /// Injection requests only target the local port.
    #[test]
    fn injection_targets_local_port(
        spec in arb_spec(),
        view in arb_view(6),
        node in 0u16..64,
        dest in 0u16..64,
        seed in 0u64..64,
    ) {
        prop_assume!(node != dest);
        let mesh = Mesh::square(8);
        let algo = spec.build();
        let ctx = RoutingCtx {
            topo: mesh.into(),
            current: NodeId(node),
            src: NodeId(node),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 6,
            ports: &view,
            congestion: &NoCongestionInfo,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        algo.injection_requests(&ctx, &mut rng, &mut out);
        prop_assert!(!out.is_empty(), "{}", spec.name());
        prop_assert!(
            out.iter().all(|r| r.port == Port::Local),
            "{}: injection request off the local port", spec.name()
        );
    }

    /// Odd-even's allowed set equals what its route() actually uses.
    #[test]
    fn odd_even_route_within_allowed_dirs(
        view in arb_view(6),
        cur in 0u16..64,
        src in 0u16..64,
        dest in 0u16..64,
        seed in 0u64..64,
    ) {
        prop_assume!(cur != dest);
        let mesh = Mesh::square(8);
        let algo = RoutingSpec::OddEven.build();
        let allowed = algo.allowed_dirs(mesh.into(), NodeId(cur), NodeId(src), NodeId(dest));
        let ctx = RoutingCtx {
            topo: mesh.into(),
            current: NodeId(cur),
            src: NodeId(src),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 6,
            ports: &view,
            congestion: &NoCongestionInfo,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        for req in &out {
            if let Port::Dir(d) = req.port {
                prop_assert!(allowed.contains(d), "odd-even used banned dir {d}");
            }
        }
        let _ = DIRECTIONS; // keep import used on all cfgs
    }
}
