//! Dimension-order routing (DOR) — the oblivious, deterministic baseline.

use crate::algorithm::{coin, eject_requests, DirSet, WrapStrategy};
use crate::{Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy};
use footprint_topology::{AnyTopology, NodeId, Port};
use rand::RngCore;

/// XY dimension-order routing.
///
/// Packets first travel along X to the destination column, then along Y.
/// On meshes all VCs of a channel are usable (the paper's Figure 2(a): DOR
/// saturates *all* VCs of a congested link) and the CDG of XY routing is
/// acyclic outright, so no escape channel is reserved and VCs are
/// reallocated non-atomically.
///
/// On wrapping topologies (torus, ring) minimal dimension-order routes
/// close cycles through the wraparound channels, so each channel's VCs are
/// split into two dateline half-classes: the lower half while the packet
/// still has the wrap crossing of that dimension ahead of it, the upper
/// half once it no longer does. Class transitions are one-way, which keeps
/// the VC-level dependency graph acyclic (see
/// [`footprint_topology::Torus`] for the full argument).
///
/// ```
/// use footprint_routing::{Dor, RoutingAlgorithm};
/// use footprint_topology::{Mesh, NodeId, Direction};
///
/// let dor = Dor;
/// let dirs = dor.allowed_dirs(Mesh::square(4).into(), NodeId(0), NodeId(0), NodeId(10));
/// assert!(dirs.contains(Direction::East));
/// assert_eq!(dirs.len(), 1); // deterministic: only the X direction
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dor;

/// The VC index range DOR may request on the channel `ctx.current → dir`:
/// all VCs on acyclic topologies, the dateline half-class on wrapping ones.
fn dor_vc_band(ctx: &RoutingCtx<'_>, dir: footprint_topology::Direction) -> core::ops::Range<usize> {
    if !ctx.topo.wraps() {
        return 0..ctx.num_vcs;
    }
    let half = ctx.num_vcs / 2;
    if ctx.topo.escape_class(ctx.current, ctx.dest, dir) == 0 {
        0..half
    } else {
        half..ctx.num_vcs
    }
}

impl RoutingAlgorithm for Dor {
    fn name(&self) -> &'static str {
        "dor"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::NonAtomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn wrap_strategy(&self) -> WrapStrategy {
        WrapStrategy::DatelineVcClasses
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let _ = rng;
        let dirs = ctx.topo.minimal_dirs(ctx.current, ctx.dest);
        let dir = match dirs.x.or(dirs.y) {
            Some(d) => d,
            None => return eject_requests(ctx, out),
        };
        for v in dor_vc_band(ctx, dir) {
            out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
        }
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let _ = rng;
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Low));
        }
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, _src: NodeId, dest: NodeId) -> DirSet {
        let dirs = topo.minimal_dirs(cur, dest);
        dirs.x.or(dirs.y).into_iter().collect()
    }
}

/// Minimal fully-adaptive random routing without congestion awareness.
///
/// Not one of the paper's evaluated algorithms, but a useful reference point
/// and test fixture: it requests every VC on a uniformly chosen productive
/// direction, with a Duato escape channel for deadlock freedom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomMinimal;

impl RoutingAlgorithm for RandomMinimal {
    fn name(&self) -> &'static str {
        "random-minimal"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        true
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let dirs = ctx.topo.minimal_dirs(ctx.current, ctx.dest);
        if dirs.count() == 0 {
            return eject_requests(ctx, out);
        }
        // Faulted or dead-end candidates are excluded; the coin is only
        // consumed when both candidates survive, so a fault-free run draws
        // the exact same RNG sequence as before the fault subsystem existed.
        let ux = dirs.x.filter(|&d| ctx.usable(d));
        let uy = dirs.y.filter(|&d| ctx.usable(d));
        let dir = match (ux, uy) {
            (Some(x), Some(y)) => {
                if coin(rng) {
                    x
                } else {
                    y
                }
            }
            (Some(d), None) | (None, Some(d)) => d,
            // Every productive direction is masked: stand down and wait
            // (the simulator's reachability gate keeps such packets from
            // being injected; mid-run fault onsets land in the watchdog).
            (None, None) => return,
        };
        for v in ctx.adaptive_lo(true)..ctx.num_vcs {
            out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
        }
        ctx.push_escape_request(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllLinksUp, DownLinks, NoCongestionInfo, TablePortView};
    use footprint_topology::{Direction, Mesh};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn route_at(cur: u16, dest: u16) -> Vec<VcRequest> {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(cur),
            src: NodeId(0),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: &view,
            congestion: &cong,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        Dor.route(&ctx, &mut rng, &mut out);
        out
    }

    #[test]
    fn dor_goes_x_first() {
        // n0=(0,0) → n10=(2,2): East.
        let reqs = route_at(0, 10);
        assert!(reqs.iter().all(|r| r.port == Port::Dir(Direction::East)));
        assert_eq!(reqs.len(), 4); // all VCs
    }

    #[test]
    fn dor_goes_y_when_column_matches() {
        // n2=(2,0) → n10=(2,2): North.
        let reqs = route_at(2, 10);
        assert!(reqs.iter().all(|r| r.port == Port::Dir(Direction::North)));
    }

    #[test]
    fn dor_ejects_at_destination() {
        let reqs = route_at(10, 10);
        assert!(reqs.iter().all(|r| r.port == Port::Local));
        assert_eq!(reqs.len(), 4);
    }

    #[test]
    fn dor_properties() {
        assert_eq!(Dor.policy(), VcReallocationPolicy::NonAtomic);
        assert!(!Dor.has_escape());
        assert!(!Dor.allows_footprint_join());
        assert_eq!(Dor.name(), "dor");
    }

    #[test]
    fn dor_keeps_requesting_its_only_route_under_faults() {
        // DOR is deterministic by definition: a fault on its one legal
        // channel does not reroute it (the simulator reports such pairs as
        // unreachable instead).
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
        let ctx = RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(10),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: &view,
            congestion: &cong,
            links: &faults,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        Dor.route(&ctx, &mut rng, &mut out);
        assert!(out.iter().all(|r| r.port == Port::Dir(Direction::East)));
    }

    #[test]
    fn random_minimal_avoids_faulted_direction() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
        let ctx = RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(10),
            input_port: Port::Local,
            input_vc: VcId(1),
            on_escape: false,
            num_vcs: 4,
            ports: &view,
            congestion: &cong,
            links: &faults,
        };
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            RandomMinimal.route(&ctx, &mut rng, &mut out);
            assert!(!out.is_empty());
            assert!(
                out.iter().all(|r| r.port == Port::Dir(Direction::North)),
                "seed {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn dor_allowed_dirs_is_singleton_off_destination() {
        let mesh = Mesh::square(8);
        let dirs = Dor.allowed_dirs(mesh.into(), NodeId(0), NodeId(0), NodeId(63));
        assert_eq!(dirs.len(), 1);
        assert!(dirs.contains(Direction::East));
    }

    #[test]
    fn random_minimal_requests_adaptive_vcs_plus_escape() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(10),
            input_port: Port::Local,
            input_vc: VcId(1),
            on_escape: false,
            num_vcs: 4,
            ports: &view,
            congestion: &cong,
            links: &AllLinksUp,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = Vec::new();
        RandomMinimal.route(&ctx, &mut rng, &mut out);
        // 3 adaptive requests + 1 escape request.
        assert_eq!(out.len(), 4);
        assert_eq!(
            out.iter()
                .filter(|r| r.vc == VcId::ESCAPE && r.priority == Priority::Lowest)
                .count(),
            1
        );
        assert!(out.iter().filter(|r| r.vc != VcId::ESCAPE).all(|r| {
            r.port == Port::Dir(Direction::East) || r.port == Port::Dir(Direction::North)
        }));
    }
}
