//! Footprint VC selection as a composable overlay — operationalizing §5's
//! claim that "the Footprint approach is not limited to any particular
//! routing algorithm".
//!
//! [`FootprintOverlay`] keeps the *port* decisions of any inner algorithm
//! and re-prioritizes its VC requests with the footprint classification of
//! Algorithm 1's step 3 (idle / footprint / busy, congestion-gated). The
//! overlay adds only VC *preferences* — no new channel dependencies — so
//! the inner algorithm's deadlock-freedom argument carries over unchanged.

use crate::{
    DirSet, Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy,
};
use footprint_topology::{Mesh, NodeId, Port};
use rand::RngCore;

/// Wraps a routing algorithm with footprint-prioritized VC selection.
///
/// For every port the inner algorithm requested, the overlay classifies
/// that port's usable VCs (preserving the inner algorithm's escape VC, if
/// any) and re-emits them with Algorithm-1 step-3 priorities. Combined with
/// e.g. Odd-Even this yields "Odd-Even + Footprint": partial port
/// adaptiveness with full VC adaptiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintOverlay<A> {
    inner: A,
    name: &'static str,
}

impl<A: RoutingAlgorithm> FootprintOverlay<A> {
    /// Wraps `inner` under a display name (e.g. `"odd-even+footprint"`).
    pub fn new(inner: A, name: &'static str) -> Self {
        FootprintOverlay { inner, name }
    }

    /// Step-3 reclassification of the tail `reqs[start..]`.
    fn reprioritize(&self, ctx: &RoutingCtx<'_>, reqs: &mut Vec<VcRequest>, start: usize) {
        let lo = ctx.adaptive_lo(self.inner.has_escape());
        // Distinct requested ports, escape requests preserved verbatim.
        let mut ports: Vec<Port> = Vec::new();
        let mut escapes: Vec<VcRequest> = Vec::new();
        for r in reqs.drain(start..) {
            if self.inner.has_escape() && r.vc == VcId::ESCAPE {
                escapes.push(r);
            } else if !ports.contains(&r.port) {
                ports.push(r.port);
            }
        }
        for port in ports {
            let (mut idle, mut fp, mut busy) = (Vec::new(), Vec::new(), Vec::new());
            for v in lo..ctx.num_vcs {
                let vc = VcId(v as u8);
                let view = ctx.ports.vc(port, vc);
                if view.is_footprint_for(ctx.dest) {
                    fp.push(vc);
                } else if view.idle {
                    idle.push(vc);
                } else {
                    busy.push(vc);
                }
            }
            let threshold = ctx.num_vcs / 2;
            if idle.len() >= threshold {
                for &vc in idle.iter().chain(&fp).chain(&busy) {
                    reqs.push(VcRequest::new(port, vc, Priority::Low));
                }
            } else if idle.is_empty() && !fp.is_empty() {
                for &vc in &fp {
                    reqs.push(VcRequest::new(port, vc, Priority::High));
                }
            } else if fp.len() >= idle.len() && !fp.is_empty() {
                for &vc in &fp {
                    reqs.push(VcRequest::new(port, vc, Priority::Highest));
                }
                for &vc in &idle {
                    reqs.push(VcRequest::new(port, vc, Priority::High));
                }
                for &vc in &busy {
                    reqs.push(VcRequest::new(port, vc, Priority::Low));
                }
            } else {
                for &vc in &idle {
                    reqs.push(VcRequest::new(port, vc, Priority::Highest));
                }
                for &vc in &fp {
                    reqs.push(VcRequest::new(port, vc, Priority::High));
                }
                for &vc in &busy {
                    reqs.push(VcRequest::new(port, vc, Priority::Low));
                }
            }
            // Guard against a degenerate empty request set (e.g. a
            // saturated port with no usable VC classes): fall back to every
            // usable VC at Low.
            if reqs.len() == start && escapes.is_empty() {
                for v in lo..ctx.num_vcs {
                    reqs.push(VcRequest::new(port, VcId(v as u8), Priority::Low));
                }
            }
        }
        reqs.extend(escapes);
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for FootprintOverlay<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn policy(&self) -> VcReallocationPolicy {
        self.inner.policy()
    }

    fn has_escape(&self) -> bool {
        self.inner.has_escape()
    }

    fn vc_selection(&self) -> crate::VcSelection {
        crate::VcSelection::Adaptive
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let start = out.len();
        self.inner.route(ctx, rng, out);
        if ctx.current == ctx.dest {
            return; // ejection untouched
        }
        self.reprioritize(ctx, out, start);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let start = out.len();
        self.inner.injection_requests(ctx, rng, out);
        self.reprioritize(ctx, out, start);
    }

    fn allowed_dirs(&self, mesh: Mesh, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        self.inner.allowed_dirs(mesh, cur, src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoCongestionInfo, OddEven, TablePortView, VcView};
    use footprint_topology::Direction;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn busy_vc(owner: u16) -> VcView {
        VcView {
            idle: false,
            owner: Some(NodeId(owner)),
            credits: 2,
            joinable: true,
        }
    }

    fn mk_ctx<'a>(view: &'a TablePortView, cong: &'a NoCongestionInfo) -> RoutingCtx<'a> {
        RoutingCtx {
            mesh: Mesh::square(8),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(63),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: view,
            congestion: cong,
        }
    }

    #[test]
    fn ports_come_from_inner_vcs_get_reprioritized() {
        let mut view = TablePortView::all_idle(4, 4);
        // Saturate both candidate ports; VC1 carries traffic to our dest.
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(0), busy_vc(5));
            view.set(port, VcId(1), busy_vc(63));
            view.set(port, VcId(2), busy_vc(5));
            view.set(port, VcId(3), busy_vc(6));
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        // Only the footprint VC is requested (saturated port, fp present).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vc, VcId(1));
        assert_eq!(out[0].priority, Priority::High);
        // Direction came from odd-even's legal set.
        let legal = OddEven::legal_dirs(ctx.mesh, ctx.current, ctx.src, ctx.dest);
        let Port::Dir(d) = out[0].port else {
            panic!("expected a direction port")
        };
        assert!(legal.contains(d));
    }

    #[test]
    fn uncongested_state_requests_everything_low() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4, "all VCs of the chosen port");
        assert!(out.iter().all(|r| r.priority == Priority::Low));
    }

    #[test]
    fn delegates_structure_to_inner() {
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        assert_eq!(algo.name(), "odd-even+footprint");
        assert_eq!(algo.policy(), VcReallocationPolicy::NonAtomic);
        assert!(!algo.has_escape());
        assert_eq!(algo.vc_selection(), crate::VcSelection::Adaptive);
        let mesh = Mesh::square(8);
        assert_eq!(
            algo.allowed_dirs(mesh, NodeId(0), NodeId(0), NodeId(63)),
            OddEven.allowed_dirs(mesh, NodeId(0), NodeId(0), NodeId(63))
        );
    }

    #[test]
    fn ejection_is_untouched() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let mut ctx = mk_ctx(&view, &cong);
        ctx.current = ctx.dest;
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.port == Port::Local));
    }
}
