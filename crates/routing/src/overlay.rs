//! Footprint VC selection as a composable overlay — operationalizing §5's
//! claim that "the Footprint approach is not limited to any particular
//! routing algorithm".
//!
//! [`FootprintOverlay`] keeps the *port* decisions of any inner algorithm
//! and re-prioritizes its VC requests with the footprint classification of
//! Algorithm 1's step 3 (idle / footprint / busy, congestion-gated). The
//! overlay adds only VC *preferences* — no new channel dependencies — so
//! the inner algorithm's deadlock-freedom argument carries over unchanged.

use crate::footprint::{class_masks, push_mask_class, VcClass};
use crate::{
    DirSet, Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy,
};
use footprint_topology::{AnyTopology, NodeId, Port, PORT_COUNT};
use rand::RngCore;

/// Wraps a routing algorithm with footprint-prioritized VC selection.
///
/// For every port the inner algorithm requested, the overlay classifies
/// that port's usable VCs (preserving the inner algorithm's escape VC, if
/// any) and re-emits them with Algorithm-1 step-3 priorities. Combined with
/// e.g. Odd-Even this yields "Odd-Even + Footprint": partial port
/// adaptiveness with full VC adaptiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FootprintOverlay<A> {
    inner: A,
    name: &'static str,
}

impl<A: RoutingAlgorithm> FootprintOverlay<A> {
    /// Wraps `inner` under a display name (e.g. `"odd-even+footprint"`).
    pub fn new(inner: A, name: &'static str) -> Self {
        FootprintOverlay { inner, name }
    }

    /// Step-3 reclassification of the tail `reqs[start..]`, rewritten in
    /// place — this runs per packet per cycle, so no temporary lists.
    ///
    /// Escape requests are compacted (order-preserving) to the front of
    /// the tail during the scan, the reclassified per-port requests are
    /// appended behind them, and a final rotation restores the
    /// `[reclassified..., escapes...]` layout of the original code.
    fn reprioritize(&self, ctx: &RoutingCtx<'_>, reqs: &mut Vec<VcRequest>, start: usize) {
        let lo = ctx.adaptive_lo(self.inner.has_escape());
        let has_escape = self.inner.has_escape();
        // Distinct requested ports in first-seen order; escape requests
        // preserved verbatim.
        let mut seen = [false; PORT_COUNT];
        let mut port_order = [Port::Local; PORT_COUNT];
        let mut num_ports = 0;
        let mut write = start;
        for read in start..reqs.len() {
            let r = reqs[read];
            if has_escape && r.vc == VcId::ESCAPE {
                reqs[write] = r;
                write += 1;
            } else if !seen[r.port.index()] {
                seen[r.port.index()] = true;
                port_order[num_ports] = r.port;
                num_ports += 1;
            }
        }
        let num_escapes = write - start;
        reqs.truncate(write);
        for &port in &port_order[..num_ports] {
            let masks = class_masks(ctx, port, ctx.dest, lo);
            let (idle, fp) = (masks.idle_count(), masks.footprint_count());
            let threshold = ctx.num_vcs / 2;
            let push = |class, priority, reqs: &mut Vec<VcRequest>| {
                push_mask_class(port, masks, class, priority, usize::MAX, reqs);
            };
            if idle >= threshold {
                push(VcClass::Idle, Priority::Low, reqs);
                push(VcClass::Footprint, Priority::Low, reqs);
                push(VcClass::Busy, Priority::Low, reqs);
            } else if idle == 0 && fp > 0 {
                push(VcClass::Footprint, Priority::High, reqs);
            } else if fp >= idle && fp > 0 {
                push(VcClass::Footprint, Priority::Highest, reqs);
                push(VcClass::Idle, Priority::High, reqs);
                push(VcClass::Busy, Priority::Low, reqs);
            } else {
                push(VcClass::Idle, Priority::Highest, reqs);
                push(VcClass::Footprint, Priority::High, reqs);
                push(VcClass::Busy, Priority::Low, reqs);
            }
            // Guard against a degenerate empty request set (e.g. a
            // saturated port with no usable VC classes): fall back to every
            // usable VC at Low.
            if reqs.len() == start && num_escapes == 0 {
                for v in lo..ctx.num_vcs {
                    reqs.push(VcRequest::new(port, VcId::from_index(v), Priority::Low));
                }
            }
        }
        // [escapes..., reclassified...] → [reclassified..., escapes...].
        reqs[start..].rotate_left(num_escapes);
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for FootprintOverlay<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn policy(&self) -> VcReallocationPolicy {
        self.inner.policy()
    }

    fn has_escape(&self) -> bool {
        self.inner.has_escape()
    }

    fn vc_selection(&self) -> crate::VcSelection {
        crate::VcSelection::Adaptive
    }

    fn wrap_strategy(&self) -> crate::WrapStrategy {
        // The overlay adds VC preferences, not channel dependencies, so the
        // inner algorithm's wrap argument carries over unchanged.
        self.inner.wrap_strategy()
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let start = out.len();
        self.inner.route(ctx, rng, out);
        if ctx.current == ctx.dest {
            return; // ejection untouched
        }
        self.reprioritize(ctx, out, start);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let start = out.len();
        self.inner.injection_requests(ctx, rng, out);
        self.reprioritize(ctx, out, start);
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        self.inner.allowed_dirs(topo, cur, src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoCongestionInfo, OddEven, TablePortView, VcView};
    use footprint_topology::{Direction, Mesh};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn busy_vc(owner: u16) -> VcView {
        VcView {
            idle: false,
            owner: Some(NodeId(owner)),
            credits: 2,
            joinable: true,
        }
    }

    fn mk_ctx<'a>(view: &'a TablePortView, cong: &'a NoCongestionInfo) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: Mesh::square(8).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(63),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: view,
            congestion: cong,
            links: &crate::AllLinksUp,
        }
    }

    #[test]
    fn ports_come_from_inner_vcs_get_reprioritized() {
        let mut view = TablePortView::all_idle(4, 4);
        // Saturate both candidate ports; VC1 carries traffic to our dest.
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(0), busy_vc(5));
            view.set(port, VcId(1), busy_vc(63));
            view.set(port, VcId(2), busy_vc(5));
            view.set(port, VcId(3), busy_vc(6));
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        // Only the footprint VC is requested (saturated port, fp present).
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vc, VcId(1));
        assert_eq!(out[0].priority, Priority::High);
        // Direction came from odd-even's legal set.
        let legal = OddEven::legal_dirs(ctx.topo, ctx.current, ctx.src, ctx.dest);
        let Port::Dir(d) = out[0].port else {
            panic!("expected a direction port")
        };
        assert!(legal.contains(d));
    }

    #[test]
    fn uncongested_state_requests_everything_low() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4, "all VCs of the chosen port");
        assert!(out.iter().all(|r| r.priority == Priority::Low));
    }

    #[test]
    fn delegates_structure_to_inner() {
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        assert_eq!(algo.name(), "odd-even+footprint");
        assert_eq!(algo.policy(), VcReallocationPolicy::NonAtomic);
        assert!(!algo.has_escape());
        assert_eq!(algo.vc_selection(), crate::VcSelection::Adaptive);
        let mesh = Mesh::square(8);
        assert_eq!(
            algo.allowed_dirs(mesh.into(), NodeId(0), NodeId(0), NodeId(63)),
            OddEven.allowed_dirs(mesh.into(), NodeId(0), NodeId(0), NodeId(63))
        );
    }

    #[test]
    fn ejection_is_untouched() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let mut ctx = mk_ctx(&view, &cong);
        ctx.current = ctx.dest;
        let algo = FootprintOverlay::new(OddEven, "odd-even+footprint");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.port == Port::Local));
    }
}
