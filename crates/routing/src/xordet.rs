//! XORDET static VC mapping (Peñaranda et al., HPCC 2014), composable with
//! any port-selection algorithm.

use crate::{
    DirSet, Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy,
};
use footprint_topology::{AnyTopology, NodeId, PORT_COUNT};
use rand::RngCore;

/// Computes the XORDET VC class of a destination: the XOR of its mesh
/// coordinates. Destinations in the same class share a VC, which bounds the
/// HoL interference any single endpoint can cause.
///
/// ```
/// use footprint_routing::xordet_class;
/// use footprint_topology::{Mesh, NodeId};
/// let mesh = Mesh::square(4);
/// // n10 = (2,2) and n15 = (3,3) share a class; n13 = (1,3) does not
/// // (the paper's Figure 2(c) grouping, up to VC renumbering).
/// assert_eq!(xordet_class(mesh, NodeId(10)), xordet_class(mesh, NodeId(15)));
/// assert_ne!(xordet_class(mesh, NodeId(13)), xordet_class(mesh, NodeId(10)));
/// ```
pub fn xordet_class(topo: impl Into<AnyTopology>, dest: NodeId) -> u16 {
    let c = topo.into().coord(dest);
    c.x ^ c.y
}

/// Wraps a routing algorithm and replaces its VC selection with the XORDET
/// static destination→VC mapping.
///
/// * Port selection (and the escape mechanism, if any) comes from the inner
///   algorithm — e.g. `DBAR + XORDET` in the paper's evaluation.
/// * Each adaptive request set collapses to a single VC per port:
///   `vc = class(dest) mod mapped_vcs`, where `mapped_vcs` excludes the
///   escape VC for Duato-based inner algorithms.
///
/// Because the mapping is static, the branches of a congestion tree stay
/// thin (Figure 2(c)) — but buffer utilization suffers on skewed traffic,
/// which is exactly the XORDET weakness the paper's Figures 5–6 expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xordet<A> {
    inner: A,
    name: &'static str,
}

impl<A: RoutingAlgorithm> Xordet<A> {
    /// Wraps `inner`, giving the combination a display name (e.g.
    /// `"dbar+xordet"`).
    pub fn new(inner: A, name: &'static str) -> Self {
        Xordet { inner, name }
    }

    /// The VC that XORDET maps `dest` to under this algorithm's layout.
    pub fn mapped_vc(&self, ctx: &RoutingCtx<'_>, dest: NodeId) -> VcId {
        let lo = ctx.adaptive_lo(self.inner.has_escape());
        let range = ctx.num_vcs - lo;
        debug_assert!(range > 0, "XORDET needs at least one mappable VC");
        let class = xordet_class(ctx.topo, dest) as usize;
        VcId::from_index(lo + class % range)
    }

    /// Rewrites the requests appended after `start` so each port requests
    /// only the mapped VC (escape requests pass through untouched).
    ///
    /// Only the tail `reqs[start..]` is touched: the routing buffer is
    /// shared by every requester at a router, and earlier entries belong to
    /// other packets. The rewrite is in place (per-port state lives in
    /// fixed arrays) — this runs per packet per cycle, so it must not
    /// allocate: escapes are compacted to the front of the tail, the
    /// collapsed per-port requests appended, and a final rotation restores
    /// the `[mapped..., escapes...]` order of the original code.
    fn remap(&self, ctx: &RoutingCtx<'_>, reqs: &mut Vec<VcRequest>, start: usize) {
        let mapped = self.mapped_vc(ctx, ctx.dest);
        let has_escape = self.inner.has_escape();
        // Highest priority seen per port, ports kept in first-seen order.
        let mut best: [Option<Priority>; PORT_COUNT] = [None; PORT_COUNT];
        let mut port_order = [footprint_topology::Port::Local; PORT_COUNT];
        let mut num_ports = 0;
        let mut write = start;
        for read in start..reqs.len() {
            let r = reqs[read];
            if has_escape && r.vc == VcId::ESCAPE {
                reqs[write] = r;
                write += 1;
                continue;
            }
            let slot = &mut best[r.port.index()];
            match slot {
                Some(pri) => *pri = (*pri).max(r.priority),
                None => {
                    *slot = Some(r.priority);
                    port_order[num_ports] = r.port;
                    num_ports += 1;
                }
            }
        }
        let num_escapes = write - start;
        reqs.truncate(write);
        for &port in &port_order[..num_ports] {
            // Listed ports always have a recorded priority; skip (rather
            // than panic) if that bookkeeping is ever violated.
            let Some(pri) = best[port.index()] else { continue };
            reqs.push(VcRequest::new(port, mapped, pri));
        }
        // [escapes..., mapped...] → [mapped..., escapes...].
        reqs[start..].rotate_left(num_escapes);
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for Xordet<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn policy(&self) -> VcReallocationPolicy {
        self.inner.policy()
    }

    fn has_escape(&self) -> bool {
        self.inner.has_escape()
    }

    fn allows_footprint_join(&self) -> bool {
        // The static mapping relies on same-class packets sharing a VC, so
        // packets must be able to queue behind each other. For Duato-based
        // inner algorithms (atomic policy) we allow same-destination joins,
        // mirroring how XORDET deployments dedicate the VC to the class.
        true
    }

    fn vc_selection(&self) -> crate::VcSelection {
        crate::VcSelection::StaticMapped
    }

    fn wrap_strategy(&self) -> crate::WrapStrategy {
        // The static class→VC collapse discards the dateline/escape VC
        // freedom the wrap arguments rely on, so XORDET stays mesh-only.
        crate::WrapStrategy::Unsupported
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let start = out.len();
        self.inner.route(ctx, rng, out);
        if ctx.current == ctx.dest {
            return; // ejection: no remapping
        }
        self.remap(ctx, out, start);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let start = out.len();
        self.inner.injection_requests(ctx, rng, out);
        self.remap(ctx, out, start);
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        self.inner.allowed_dirs(topo, cur, src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbar, Dor, NoCongestionInfo, OddEven, TablePortView};
    use footprint_topology::{Direction, Mesh, Port};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mk_ctx<'a>(
        view: &'a TablePortView,
        cong: &'a NoCongestionInfo,
        num_vcs: usize,
        dest: u16,
    ) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs,
            ports: view,
            congestion: cong,
            links: &crate::AllLinksUp,
        }
    }

    #[test]
    fn class_is_coordinate_xor() {
        let mesh = Mesh::square(4);
        assert_eq!(xordet_class(mesh, NodeId(0)), 0); // (0,0)
        assert_eq!(xordet_class(mesh, NodeId(13)), 1 ^ 3); // (1,3)
        assert_eq!(xordet_class(mesh, NodeId(10)), 0); // (2,2)
    }

    #[test]
    fn dor_xordet_requests_single_mapped_vc() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 4, 13);
        let algo = Xordet::new(Dor, "dor+xordet");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        // class(n13) = 2, no escape → vc = 2 % 4 = 2.
        assert_eq!(out[0].vc, VcId(2));
        assert_eq!(out[0].port, Port::Dir(Direction::East));
    }

    #[test]
    fn dbar_xordet_preserves_escape_request() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 4, 13);
        let algo = Xordet::new(Dbar, "dbar+xordet");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        // One mapped adaptive request + one escape request.
        assert_eq!(out.len(), 2);
        let esc = crate::invariant::escape_request(&out, NodeId(0), NodeId(13)).unwrap();
        assert_eq!(esc.priority, Priority::Lowest);
        let adaptive = out.iter().find(|r| r.vc != VcId::ESCAPE).unwrap();
        // class 2, escape layout → vc = 1 + 2 % 3 = 3.
        assert_eq!(adaptive.vc, VcId(3));
    }

    #[test]
    fn same_class_destinations_share_a_vc() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let algo = Xordet::new(OddEven, "oe+xordet");
        let mesh = Mesh::square(4);
        let ctx_a = mk_ctx(&view, &cong, 4, 10);
        let ctx_b = mk_ctx(&view, &cong, 4, 15);
        assert_eq!(xordet_class(mesh, NodeId(10)), xordet_class(mesh, NodeId(15)));
        assert_eq!(
            algo.mapped_vc(&ctx_a, NodeId(10)),
            algo.mapped_vc(&ctx_b, NodeId(15))
        );
    }

    #[test]
    fn ejection_is_not_remapped() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let mut ctx = mk_ctx(&view, &cong, 4, 13);
        ctx.current = NodeId(13);
        let algo = Xordet::new(Dor, "dor+xordet");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4); // all local VCs for ejection
        assert!(out.iter().all(|r| r.port == Port::Local));
    }

    #[test]
    fn injection_maps_by_destination() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 4, 13);
        let algo = Xordet::new(Dor, "dor+xordet");
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        algo.injection_requests(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vc, VcId(2));
        assert_eq!(out[0].port, Port::Local);
    }

    #[test]
    fn name_and_policy_delegate() {
        let algo = Xordet::new(Dor, "dor+xordet");
        assert_eq!(algo.name(), "dor+xordet");
        assert_eq!(algo.policy(), VcReallocationPolicy::NonAtomic);
        assert!(!algo.has_escape());
    }
}
