//! Channel-dependency-graph (CDG) deadlock analysis (Dally & Seitz; the
//! foundation under the paper's §3.4 argument).
//!
//! A wormhole network is deadlock-free if the graph whose nodes are the
//! directed physical channels and whose edges are the *channel
//! dependencies* the routing function can create (packet holds channel A
//! while requesting channel B) is acyclic. For turn-model algorithms
//! (DOR, Odd-Even, West-First, North-Last) the full CDG must be acyclic;
//! for Duato-based algorithms (DBAR, Footprint) only the *escape
//! sub-network* (VC 0, dimension-order routed) needs an acyclic CDG, since
//! every waiting packet keeps a standing request on it.
//!
//! [`check_deadlock_freedom`] runs the appropriate check for any
//! [`RoutingAlgorithm`]; the test suites use it to *prove* (rather than
//! stress-test) the acyclicity side of the §3.4 argument.

use crate::{Dor, RoutingAlgorithm, WrapStrategy};
use footprint_topology::{AnyTopology, Channel, Direction, NodeId};
use std::collections::BTreeMap;

/// A directed graph over a topology's channels (for wrapping topologies,
/// over its (channel, dateline-class) pairs).
#[derive(Debug, Clone, Default)]
pub struct ChannelDependencyGraph {
    /// Adjacency: channel index → dependent channel indices.
    edges: Vec<Vec<usize>>,
    /// The channels, indexable by the adjacency indices.
    channels: Vec<Channel>,
    index: BTreeMap<(u16, u8), usize>, // (src node, direction) → index
}

impl ChannelDependencyGraph {
    fn dir_code(d: Direction) -> u8 {
        let pos = footprint_topology::DIRECTIONS
            .iter()
            .position(|&x| x == d)
            .expect("direction in table");
        u8::try_from(pos).expect("direction table fits in u8")
    }

    /// Builds the CDG of `algo`'s allowed-direction relation on `topo`:
    /// there is an edge `A → B` iff some packet (over all source/destination
    /// pairs) can occupy channel `A` while requesting channel `B`.
    pub fn build(topo: impl Into<AnyTopology>, algo: &dyn RoutingAlgorithm) -> Self {
        let topo = topo.into();
        let mut g = ChannelDependencyGraph::default();
        for ch in topo.channels() {
            let idx = g.channels.len();
            g.index.insert((ch.src.0, Self::dir_code(ch.dir)), idx);
            g.channels.push(ch);
            g.edges.push(Vec::new());
        }
        // A packet src→dest occupying channel (a → b, direction d_in) may
        // request any allowed direction at b (except immediate ejection).
        // Only channels the packet can actually *reach* from its source
        // count: several turn models (odd-even's source-column condition in
        // particular) are deadlock-free precisely because certain
        // position/route combinations are unreachable.
        let mut reach = vec![false; topo.len()];
        let mut frontier: Vec<NodeId> = Vec::new();
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                reach.fill(false);
                reach[src.index()] = true;
                frontier.clear();
                frontier.push(src);
                while let Some(a) = frontier.pop() {
                    if a == dest {
                        continue;
                    }
                    for d_in in algo.allowed_dirs(topo, a, src, dest).iter() {
                        let Some(b) = topo.neighbor(a, d_in) else {
                            continue;
                        };
                        if !reach[b.index()] {
                            reach[b.index()] = true;
                            frontier.push(b);
                        }
                        if b == dest {
                            continue; // ejection: no further channel
                        }
                        let from = g.index[&(a.0, Self::dir_code(d_in))];
                        for d_out in algo.allowed_dirs(topo, b, src, dest).iter() {
                            if topo.neighbor(b, d_out).is_some() {
                                let to = g.index[&(b.0, Self::dir_code(d_out))];
                                g.edges[from].push(to);
                            }
                        }
                    }
                }
            }
        }
        for adj in &mut g.edges {
            adj.sort_unstable();
            adj.dedup();
        }
        g
    }

    /// Builds the *dateline-classed* CDG of the dimension-ordered escape
    /// relation on `topo`: graph nodes are `(channel, escape class)` pairs
    /// and each `(src, dest)` pair contributes its deterministic
    /// dimension-order route, with the class of every hop given by
    /// [`footprint_topology::Topology::escape_class`]. This is the VC-level
    /// dependency graph that both the Duato escape sub-network
    /// ([`WrapStrategy::EscapeVcs`]) and dateline-classed DOR
    /// ([`WrapStrategy::DatelineVcClasses`]) induce on a wrapping topology;
    /// on a mesh every class is 0 and it degenerates to the ordinary DOR
    /// CDG.
    pub fn build_escape_classed(topo: impl Into<AnyTopology>) -> Self {
        let topo = topo.into();
        let mut g = ChannelDependencyGraph::default();
        // One graph node per (channel, class); `channels` keeps the physical
        // channel so a witness cycle renders meaningfully.
        for class in 0..topo.escape_vcs() {
            for ch in topo.channels() {
                let idx = g.channels.len();
                g.index
                    .insert((ch.src.0, Self::dir_code(ch.dir) | ((class as u8) << 4)), idx);
                g.channels.push(ch);
                g.edges.push(Vec::new());
            }
        }
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                let mut cur = src;
                let mut held: Option<usize> = None;
                while cur != dest {
                    let dirs = topo.minimal_dirs(cur, dest);
                    let Some(d) = dirs.x.or(dirs.y) else { break };
                    let class = topo.escape_class(cur, dest, d);
                    let idx = g.index[&(cur.0, Self::dir_code(d) | (class << 4))];
                    if let Some(h) = held {
                        g.edges[h].push(idx);
                    }
                    held = Some(idx);
                    cur = topo.neighbor(cur, d).expect("minimal direction has a neighbor");
                }
            }
        }
        for adj in &mut g.edges {
            adj.sort_unstable();
            adj.dedup();
        }
        g
    }

    /// Builds the dateline-classed escape CDG restricted to the channels
    /// that survive a fault mask, and collects the `(src, dest)` pairs
    /// whose dimension-order escape route the mask severs.
    ///
    /// `dead` lists the masked directed channels as `(upstream, dir)`
    /// pairs. The escape relation is deterministic (one route per pair), so
    /// a masked hop anywhere on a pair's route means that pair has *no*
    /// escape path — it contributes no dependencies (it must be quarantined
    /// at injection, not routed) and is reported in the severed list, in
    /// `(src, dest)` lexical order.
    pub fn build_escape_classed_masked(
        topo: impl Into<AnyTopology>,
        dead: &[(NodeId, Direction)],
    ) -> (Self, Vec<(NodeId, NodeId)>) {
        let topo = topo.into();
        let is_dead = |node: NodeId, dir: Direction| dead.contains(&(node, dir));
        let mut g = ChannelDependencyGraph::default();
        for class in 0..topo.escape_vcs() {
            for ch in topo.channels() {
                if is_dead(ch.src, ch.dir) {
                    continue;
                }
                let idx = g.channels.len();
                g.index
                    .insert((ch.src.0, Self::dir_code(ch.dir) | ((class as u8) << 4)), idx);
                g.channels.push(ch);
                g.edges.push(Vec::new());
            }
        }
        let mut severed = Vec::new();
        for src in topo.nodes() {
            for dest in topo.nodes() {
                if src == dest {
                    continue;
                }
                // Walk the pair's route twice: first to see whether it
                // survives, then to record its dependencies — a severed
                // pair must leave no edges behind.
                let mut cur = src;
                let mut alive = true;
                while cur != dest {
                    let dirs = topo.minimal_dirs(cur, dest);
                    let Some(d) = dirs.x.or(dirs.y) else { break };
                    if is_dead(cur, d) {
                        alive = false;
                        break;
                    }
                    cur = topo.neighbor(cur, d).expect("minimal direction has a neighbor");
                }
                if !alive {
                    severed.push((src, dest));
                    continue;
                }
                let mut cur = src;
                let mut held: Option<usize> = None;
                while cur != dest {
                    let dirs = topo.minimal_dirs(cur, dest);
                    let Some(d) = dirs.x.or(dirs.y) else { break };
                    let class = topo.escape_class(cur, dest, d);
                    let idx = g.index[&(cur.0, Self::dir_code(d) | (class << 4))];
                    if let Some(h) = held {
                        g.edges[h].push(idx);
                    }
                    held = Some(idx);
                    cur = topo.neighbor(cur, d).expect("minimal direction has a neighbor");
                }
            }
        }
        for adj in &mut g.edges {
            adj.sort_unstable();
            adj.dedup();
        }
        (g, severed)
    }

    /// Number of channels (graph nodes).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Returns a cycle as a channel list if one exists, `None` if the graph
    /// is acyclic (iterative three-color DFS).
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.edges.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with an explicit edge-iterator stack.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < self.edges[u].len() {
                    let v = self.edges[u][*ei];
                    *ei += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Found a cycle: unwind u back to v.
                            let mut cycle = vec![self.channels[v]];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(self.channels[cur]);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// `true` if the dependency graph has no cycle.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }
}

/// Outcome of [`check_deadlock_freedom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockVerdict {
    /// The algorithm's full CDG is acyclic: deadlock-free outright.
    AcyclicCdg,
    /// The algorithm relies on Duato's theory and its escape sub-network
    /// (dimension-order on the escape VC) has an acyclic CDG: deadlock-free
    /// as long as every waiting packet keeps requesting the escape channel
    /// (which the simulator's standing requests guarantee).
    EscapeNetworkAcyclic,
    /// The algorithm routes on a wrapping topology by splitting each
    /// channel's VCs into dateline classes, and the classed dependency
    /// graph is acyclic: deadlock-free.
    DatelineClassesAcyclic,
    /// The algorithm declares itself unsupported on this topology
    /// ([`WrapStrategy::Unsupported`]); no deadlock-freedom argument
    /// exists and the simulator refuses the combination at validation.
    UnsupportedOnTopology,
    /// A dependency cycle exists with no escape mechanism — a deadlock
    /// hazard. Carries one witness cycle.
    Cyclic(Vec<Channel>),
}

/// Outcome of [`check_escape_under_mask`]: does the dateline escape
/// argument survive a fault mask?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscapeMaskVerdict {
    /// Every pair's dimension-order escape route survives the mask and the
    /// masked classed CDG is acyclic (a subgraph of an acyclic graph always
    /// is): the deadlock-freedom argument carries over unchanged.
    StillAcyclic,
    /// The mask severs the deterministic escape route of one or more
    /// pairs. Those packets have no escape channel to fall back on — a
    /// waiting packet's standing escape request would point at a dead
    /// channel — so Duato's argument no longer covers them. The sound
    /// responses are a typed run error or quarantining exactly these pairs
    /// at injection; routing them adaptively and hoping is a deadlock
    /// hazard.
    EscapeCompromised {
        /// The `(src, dest)` pairs with no surviving escape route, in
        /// lexical order.
        severed: Vec<(NodeId, NodeId)>,
        /// How many of the masked channels were wraparound (dateline)
        /// channels — the cuts that specifically attack the wrap argument.
        masked_wrap_channels: usize,
    },
}

impl EscapeMaskVerdict {
    /// `true` when the mask leaves the escape argument intact.
    pub fn is_sound(&self) -> bool {
        matches!(self, EscapeMaskVerdict::StillAcyclic)
    }
}

/// Checks whether the dateline-classed escape network survives a fault
/// mask on `topo`. `dead` lists the masked directed channels as
/// `(upstream, dir)` pairs — typically every channel any `Down` event of a
/// fault plan ever touches (the conservative, whole-plan mask: a pair
/// severed even temporarily is a hazard while the cut lasts).
///
/// Masking can only *remove* dependencies, so the masked CDG stays acyclic
/// structurally; what breaks is route existence. The verdict is
/// [`EscapeMaskVerdict::EscapeCompromised`] exactly when some pair's
/// deterministic escape route dies under the mask.
pub fn check_escape_under_mask(
    topo: impl Into<AnyTopology>,
    dead: &[(NodeId, Direction)],
) -> EscapeMaskVerdict {
    let topo = topo.into();
    let (g, severed) = ChannelDependencyGraph::build_escape_classed_masked(topo, dead);
    debug_assert!(
        g.is_acyclic(),
        "masked escape CDG must stay acyclic (subgraph of an acyclic graph)"
    );
    if severed.is_empty() {
        EscapeMaskVerdict::StillAcyclic
    } else {
        let masked_wrap_channels = dead
            .iter()
            .filter(|&&(node, dir)| topo.is_wrap_channel(node, dir))
            .count();
        EscapeMaskVerdict::EscapeCompromised {
            severed,
            masked_wrap_channels,
        }
    }
}

/// Checks the structural half of the deadlock-freedom argument for `algo`
/// on `topo`.
///
/// On acyclic (mesh) topologies: full-CDG acyclicity for algorithms
/// without an escape channel, escape-sub-network acyclicity (always DOR,
/// hence always acyclic — but we verify rather than assume) for
/// Duato-based ones.
///
/// On wrapping topologies the check follows the algorithm's declared
/// [`WrapStrategy`]: turn models restricted to the acyclic channel
/// subgraph get the ordinary CDG check; escape-VC and dateline-class
/// strategies get the classed escape CDG
/// ([`ChannelDependencyGraph::build_escape_classed`]); algorithms with no
/// wrap argument report [`DeadlockVerdict::UnsupportedOnTopology`].
pub fn check_deadlock_freedom(
    topo: impl Into<AnyTopology>,
    algo: &dyn RoutingAlgorithm,
) -> DeadlockVerdict {
    let topo = topo.into();
    if topo.wraps() {
        return match algo.wrap_strategy() {
            WrapStrategy::Unsupported => DeadlockVerdict::UnsupportedOnTopology,
            WrapStrategy::AcyclicSubgraph => {
                match ChannelDependencyGraph::build(topo, algo).find_cycle() {
                    None => DeadlockVerdict::AcyclicCdg,
                    Some(c) => DeadlockVerdict::Cyclic(c),
                }
            }
            strategy @ (WrapStrategy::EscapeVcs | WrapStrategy::DatelineVcClasses) => {
                match ChannelDependencyGraph::build_escape_classed(topo).find_cycle() {
                    None if strategy == WrapStrategy::EscapeVcs => {
                        DeadlockVerdict::EscapeNetworkAcyclic
                    }
                    None => DeadlockVerdict::DatelineClassesAcyclic,
                    Some(c) => DeadlockVerdict::Cyclic(c),
                }
            }
        };
    }
    if algo.has_escape() {
        let escape = ChannelDependencyGraph::build(topo, &Dor);
        match escape.find_cycle() {
            None => DeadlockVerdict::EscapeNetworkAcyclic,
            Some(c) => DeadlockVerdict::Cyclic(c),
        }
    } else {
        let cdg = ChannelDependencyGraph::build(topo, algo);
        match cdg.find_cycle() {
            None => DeadlockVerdict::AcyclicCdg,
            Some(c) => DeadlockVerdict::Cyclic(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbar, DirSet, Footprint, NorthLast, OddEven, WestFirst};
    use footprint_topology::{Mesh, Ring, Torus, DIRECTIONS};

    #[test]
    fn dor_cdg_is_acyclic() {
        let mesh = Mesh::square(5);
        let g = ChannelDependencyGraph::build(mesh, &Dor);
        assert!(g.is_acyclic());
        assert_eq!(g.channel_count(), mesh.channels().count());
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn turn_models_have_acyclic_cdgs() {
        let mesh = Mesh::square(5);
        for algo in [
            &OddEven as &dyn RoutingAlgorithm,
            &WestFirst,
            &NorthLast,
        ] {
            assert_eq!(
                check_deadlock_freedom(mesh, algo),
                DeadlockVerdict::AcyclicCdg,
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn duato_algorithms_verify_via_escape_network() {
        let mesh = Mesh::square(5);
        assert_eq!(
            check_deadlock_freedom(mesh, &Footprint::new()),
            DeadlockVerdict::EscapeNetworkAcyclic
        );
        assert_eq!(
            check_deadlock_freedom(mesh, &Dbar),
            DeadlockVerdict::EscapeNetworkAcyclic
        );
    }

    #[test]
    fn unrestricted_minimal_routing_has_cycles() {
        // A fully adaptive relation with no escape (all minimal dirs, no
        // turn restrictions) must show a dependency cycle — the reason
        // Duato's escape channel exists at all.
        struct Unrestricted;
        impl RoutingAlgorithm for Unrestricted {
            fn name(&self) -> &'static str {
                "unrestricted"
            }
            fn policy(&self) -> crate::VcReallocationPolicy {
                crate::VcReallocationPolicy::NonAtomic
            }
            fn has_escape(&self) -> bool {
                false
            }
            fn route(
                &self,
                _ctx: &crate::RoutingCtx<'_>,
                _rng: &mut dyn rand::RngCore,
                _out: &mut Vec<crate::VcRequest>,
            ) {
                unreachable!("analysis only")
            }
        }
        let mesh = Mesh::square(4);
        let verdict = check_deadlock_freedom(mesh, &Unrestricted);
        let DeadlockVerdict::Cyclic(cycle) = verdict else {
            panic!("expected a cycle, got {verdict:?}");
        };
        // The witness is a genuine cycle: consecutive channels chain
        // head-to-tail and it closes.
        assert!(cycle.len() >= 2);
        for w in cycle.windows(2) {
            assert_eq!(w[0].dst, w[1].src);
        }
        assert_eq!(cycle.last().unwrap().dst, cycle.first().unwrap().src);
    }

    #[test]
    fn cycle_witness_respects_allowed_turns() {
        // Sanity on the builder: every edge it creates corresponds to an
        // allowed (d_in at a) followed by an allowed (d_out at b) for some
        // src/dest pair — spot-check via a restricted algorithm where we
        // can enumerate by hand: DOR's only turns are X→Y.
        let mesh = Mesh::square(3);
        let g = ChannelDependencyGraph::build(mesh, &Dor);
        // In DOR, a vertical channel can never depend on a horizontal one.
        for (i, ch) in g.channels.iter().enumerate() {
            if !ch.dir.is_x() {
                for &j in &g.edges[i] {
                    assert!(
                        !g.channels[j].dir.is_x(),
                        "DOR Y→X turn in CDG: {} then {}",
                        ch,
                        g.channels[j]
                    );
                }
            }
        }
        let _ = (DIRECTIONS, DirSet::EMPTY);
    }

    #[test]
    fn unclassed_dor_relation_is_cyclic_on_a_torus() {
        // The reason dateline classes exist: the plain channel-level DOR
        // CDG on a wrapping topology closes each ring into a cycle.
        let g = ChannelDependencyGraph::build(Torus::square(4), &Dor);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn classed_escape_cdg_is_acyclic_on_wrap_topologies() {
        for topo in [
            AnyTopology::from(Torus::square(4)),
            AnyTopology::from(Torus::new(5, 3)),
            AnyTopology::from(Ring::new(8)),
        ] {
            let g = ChannelDependencyGraph::build_escape_classed(topo);
            assert!(g.is_acyclic(), "{topo}");
            assert_eq!(g.channel_count(), topo.channels().count() * topo.escape_vcs());
        }
    }

    #[test]
    fn empty_mask_keeps_escape_sound() {
        for topo in [
            AnyTopology::from(Torus::square(4)),
            AnyTopology::from(Ring::new(8)),
            AnyTopology::from(Mesh::square(4)),
        ] {
            assert_eq!(check_escape_under_mask(topo, &[]), EscapeMaskVerdict::StillAcyclic);
        }
    }

    #[test]
    fn dateline_cut_compromises_the_escape_network() {
        use footprint_topology::Topology;
        let ring = Ring::new(8);
        // The ring's single wrap edge, both directions — the dateline cut.
        let dead = [
            (NodeId(7), Direction::East),
            (NodeId(0), Direction::West),
        ];
        assert!(ring.is_wrap_channel(NodeId(7), Direction::East));
        let verdict = check_escape_under_mask(ring, &dead);
        let EscapeMaskVerdict::EscapeCompromised {
            severed,
            masked_wrap_channels,
        } = verdict
        else {
            panic!("dateline cut must compromise escape, got {verdict:?}");
        };
        assert_eq!(masked_wrap_channels, 2);
        // Exactly the pairs whose shorter way around crosses the cut edge
        // lose their escape route; 0 → 7 is the canonical victim.
        assert!(severed.contains(&(NodeId(0), NodeId(7))));
        assert!(!severed.contains(&(NodeId(0), NodeId(1))));
        // Severed pairs contribute no dependencies: the masked CDG stays
        // acyclic (checked inside, but assert the public invariant too).
        let (g, severed2) = ChannelDependencyGraph::build_escape_classed_masked(ring, &dead);
        assert!(g.is_acyclic());
        assert_eq!(severed, severed2);
    }

    #[test]
    fn grid_cut_on_torus_severs_without_wrap_channels() {
        // A non-dateline cut still kills deterministic escape routes, but
        // reports zero masked wrap channels — the caller can tell a
        // dateline attack from an ordinary cut.
        let torus = Torus::square(4);
        let dead = [(NodeId(0), Direction::East), (NodeId(1), Direction::West)];
        match check_escape_under_mask(torus, &dead) {
            EscapeMaskVerdict::EscapeCompromised {
                severed,
                masked_wrap_channels,
            } => {
                assert_eq!(masked_wrap_channels, 0);
                assert!(severed.contains(&(NodeId(0), NodeId(1))));
            }
            v => panic!("expected compromised escape, got {v:?}"),
        }
    }

    #[test]
    fn wrap_verdicts_follow_the_declared_strategy() {
        let torus = Torus::square(4);
        assert_eq!(
            check_deadlock_freedom(torus, &Dor),
            DeadlockVerdict::DatelineClassesAcyclic
        );
        assert_eq!(
            check_deadlock_freedom(torus, &Footprint::new()),
            DeadlockVerdict::EscapeNetworkAcyclic
        );
        assert_eq!(
            check_deadlock_freedom(torus, &Dbar),
            DeadlockVerdict::EscapeNetworkAcyclic
        );
        for algo in [&OddEven as &dyn RoutingAlgorithm, &WestFirst, &NorthLast] {
            assert_eq!(
                check_deadlock_freedom(torus, algo),
                DeadlockVerdict::AcyclicCdg,
                "{}",
                algo.name()
            );
        }
        let x = crate::Xordet::new(Dor, "dor+xordet");
        assert_eq!(
            check_deadlock_freedom(torus, &x),
            DeadlockVerdict::UnsupportedOnTopology
        );
    }
}
