//! Named routing configurations — the seven algorithms of the paper's
//! Table 2 plus reference extras.

use crate::{
    Dbar, Dor, Footprint, FootprintOverlay, NorthLast, OddEven, RandomMinimal, RoutingAlgorithm,
    VoqSw, WestFirst, WrapStrategy, Xordet,
};
use core::fmt;
use core::str::FromStr;
use footprint_topology::AnyTopology;

/// A named routing configuration that can be turned into a boxed
/// [`RoutingAlgorithm`].
///
/// These are exactly the algorithms evaluated in the paper (Table 2):
/// Footprint, DBAR, Odd-Even, DOR, and the three XORDET combinations — plus
/// `RandomMinimal` as an extra reference point.
///
/// ```
/// use footprint_routing::RoutingSpec;
/// let algo = RoutingSpec::Footprint.build();
/// assert_eq!(algo.name(), "footprint");
/// assert_eq!("dbar+xordet".parse::<RoutingSpec>().unwrap(), RoutingSpec::DbarXordet);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingSpec {
    /// The paper's contribution (Algorithm 1).
    Footprint,
    /// Fully adaptive baseline.
    Dbar,
    /// Partially adaptive baseline.
    OddEven,
    /// Deterministic baseline.
    Dor,
    /// DBAR port selection + XORDET VC mapping.
    DbarXordet,
    /// Odd-Even port selection + XORDET VC mapping.
    OddEvenXordet,
    /// DOR + XORDET VC mapping.
    DorXordet,
    /// Minimal fully-adaptive random routing (reference, not in the paper).
    RandomMinimal,
    /// West-first turn model (reference, not in the paper).
    WestFirst,
    /// North-last turn model (reference, not in the paper).
    NorthLast,
    /// DOR + VOQ_sw VC mapping (the paper's footnote-5 comparison point).
    DorVoqSw,
    /// DBAR + VOQ_sw VC mapping.
    DbarVoqSw,
    /// Odd-Even port selection + Footprint VC selection (the §5 claim that
    /// Footprint composes with any routing algorithm).
    OddEvenFootprint,
}

impl RoutingSpec {
    /// The seven algorithms of the paper's Table 2, in the order the figures
    /// list them.
    pub const PAPER_SET: [RoutingSpec; 7] = [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
        RoutingSpec::DbarXordet,
        RoutingSpec::OddEvenXordet,
        RoutingSpec::DorXordet,
    ];

    /// Instantiates the algorithm.
    pub fn build(self) -> Box<dyn RoutingAlgorithm> {
        match self {
            RoutingSpec::Footprint => Box::new(Footprint::new()),
            RoutingSpec::Dbar => Box::new(Dbar),
            RoutingSpec::OddEven => Box::new(OddEven),
            RoutingSpec::Dor => Box::new(Dor),
            RoutingSpec::DbarXordet => Box::new(Xordet::new(Dbar, "dbar+xordet")),
            RoutingSpec::OddEvenXordet => Box::new(Xordet::new(OddEven, "odd-even+xordet")),
            RoutingSpec::DorXordet => Box::new(Xordet::new(Dor, "dor+xordet")),
            RoutingSpec::RandomMinimal => Box::new(RandomMinimal),
            RoutingSpec::WestFirst => Box::new(WestFirst),
            RoutingSpec::NorthLast => Box::new(NorthLast),
            RoutingSpec::DorVoqSw => Box::new(VoqSw::new(Dor, "dor+voqsw")),
            RoutingSpec::DbarVoqSw => Box::new(VoqSw::new(Dbar, "dbar+voqsw")),
            RoutingSpec::OddEvenFootprint => {
                Box::new(FootprintOverlay::new(OddEven, "odd-even+footprint"))
            }
        }
    }

    /// The display name (matches `RoutingAlgorithm::name` of the built
    /// object).
    pub fn name(self) -> &'static str {
        match self {
            RoutingSpec::Footprint => "footprint",
            RoutingSpec::Dbar => "dbar",
            RoutingSpec::OddEven => "odd-even",
            RoutingSpec::Dor => "dor",
            RoutingSpec::DbarXordet => "dbar+xordet",
            RoutingSpec::OddEvenXordet => "odd-even+xordet",
            RoutingSpec::DorXordet => "dor+xordet",
            RoutingSpec::RandomMinimal => "random-minimal",
            RoutingSpec::WestFirst => "west-first",
            RoutingSpec::NorthLast => "north-last",
            RoutingSpec::DorVoqSw => "dor+voqsw",
            RoutingSpec::DbarVoqSw => "dbar+voqsw",
            RoutingSpec::OddEvenFootprint => "odd-even+footprint",
        }
    }

    /// Minimum number of VCs required: 2 for Duato-based algorithms (one
    /// escape + one adaptive, §4.2.3), 1 otherwise.
    ///
    /// This is the mesh figure; wrapping topologies reserve more — use
    /// [`RoutingSpec::min_vcs_on`] when the topology is known.
    pub fn min_vcs(self) -> usize {
        match self {
            RoutingSpec::Footprint
            | RoutingSpec::Dbar
            | RoutingSpec::DbarXordet
            | RoutingSpec::RandomMinimal
            | RoutingSpec::DbarVoqSw => 2,
            _ => 1,
        }
    }

    /// Minimum number of VCs required on `topo`: on wrapping topologies
    /// Duato-based algorithms reserve one escape VC per dateline class
    /// (plus one adaptive VC) and dateline-classed DOR needs both
    /// half-classes populated.
    pub fn min_vcs_on(self, topo: impl Into<AnyTopology>) -> usize {
        self.build().min_vcs_on(topo.into())
    }

    /// The wrap strategy of the built algorithm — how (or whether) it stays
    /// deadlock-free on wrapping topologies.
    pub fn wrap_strategy(self) -> WrapStrategy {
        self.build().wrap_strategy()
    }

    /// `true` if the algorithm can run on `topo`: always on acyclic
    /// topologies, and on wrapping ones iff it declares a wrap strategy
    /// other than [`WrapStrategy::Unsupported`].
    pub fn supported_on(self, topo: impl Into<AnyTopology>) -> bool {
        !topo.into().wraps() || self.wrap_strategy() != WrapStrategy::Unsupported
    }
}

impl fmt::Display for RoutingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown routing-algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRoutingSpecError(String);

impl fmt::Display for ParseRoutingSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown routing algorithm `{}`", self.0)
    }
}

impl std::error::Error for ParseRoutingSpecError {}

impl FromStr for RoutingSpec {
    type Err = ParseRoutingSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.to_ascii_lowercase();
        let spec = match norm.as_str() {
            "footprint" => RoutingSpec::Footprint,
            "dbar" => RoutingSpec::Dbar,
            "odd-even" | "oddeven" | "oe" => RoutingSpec::OddEven,
            "dor" | "xy" => RoutingSpec::Dor,
            "dbar+xordet" => RoutingSpec::DbarXordet,
            "odd-even+xordet" | "oe+xordet" => RoutingSpec::OddEvenXordet,
            "dor+xordet" => RoutingSpec::DorXordet,
            "random-minimal" | "random" => RoutingSpec::RandomMinimal,
            "west-first" | "wf" => RoutingSpec::WestFirst,
            "north-last" | "nl" => RoutingSpec::NorthLast,
            "dor+voqsw" => RoutingSpec::DorVoqSw,
            "dbar+voqsw" => RoutingSpec::DbarVoqSw,
            "odd-even+footprint" | "oe+footprint" => RoutingSpec::OddEvenFootprint,
            _ => return Err(ParseRoutingSpecError(s.to_owned())),
        };
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_names_match_spec_names() {
        for spec in RoutingSpec::PAPER_SET {
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(
            RoutingSpec::RandomMinimal.build().name(),
            RoutingSpec::RandomMinimal.name()
        );
    }

    #[test]
    fn parse_roundtrip() {
        for spec in RoutingSpec::PAPER_SET {
            assert_eq!(spec.name().parse::<RoutingSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("XY".parse::<RoutingSpec>().unwrap(), RoutingSpec::Dor);
        assert_eq!("oe".parse::<RoutingSpec>().unwrap(), RoutingSpec::OddEven);
    }

    #[test]
    fn parse_unknown_fails() {
        let err = "warp-speed".parse::<RoutingSpec>().unwrap_err();
        assert!(err.to_string().contains("warp-speed"));
    }

    #[test]
    fn duato_based_need_two_vcs() {
        assert_eq!(RoutingSpec::Footprint.min_vcs(), 2);
        assert_eq!(RoutingSpec::Dbar.min_vcs(), 2);
        assert_eq!(RoutingSpec::Dor.min_vcs(), 1);
        assert_eq!(RoutingSpec::OddEven.min_vcs(), 1);
    }

    #[test]
    fn paper_set_has_seven_entries() {
        assert_eq!(RoutingSpec::PAPER_SET.len(), 7);
    }

    #[test]
    fn torus_support_and_vc_floors() {
        use footprint_topology::{Mesh, Torus};
        let torus = Torus::square(4);
        // Static VC mappings have no wrap argument.
        assert!(!RoutingSpec::DorXordet.supported_on(torus));
        assert!(!RoutingSpec::DbarVoqSw.supported_on(torus));
        assert!(RoutingSpec::DorXordet.supported_on(Mesh::square(4)));
        // Duato algorithms: two escape classes + one adaptive VC.
        assert_eq!(RoutingSpec::Footprint.min_vcs_on(torus), 3);
        assert_eq!(RoutingSpec::Footprint.min_vcs_on(Mesh::square(4)), 2);
        // Dateline-classed DOR needs both half-classes.
        assert_eq!(RoutingSpec::Dor.min_vcs_on(torus), 2);
        assert_eq!(RoutingSpec::Dor.min_vcs_on(Mesh::square(4)), 1);
        // Turn models route on the acyclic subgraph: no extra VCs.
        assert_eq!(RoutingSpec::OddEven.min_vcs_on(torus), 1);
        assert!(RoutingSpec::OddEven.supported_on(torus));
    }
}
