//! The routing-algorithm abstraction.

use crate::{CongestionView, LinkStateView, PortStateView, Priority, VcId, VcRequest};
use footprint_topology::{AnyTopology, Direction, NodeId, Port};
use rand::RngCore;

/// How output VCs may be reallocated to new packets.
///
/// The paper (§4.2.1) points out that routing algorithms based on Duato's
/// theory "cannot reallocate an VC unless the credit of the tail flit has
/// been received" — that is [`VcReallocationPolicy::Atomic`] — while
/// Odd-Even (and DOR) have no such restriction and reallocate as soon as the
/// tail has been forwarded ([`VcReallocationPolicy::NonAtomic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcReallocationPolicy {
    /// A VC may be reallocated only once it is completely drained (all
    /// credits returned). Required by Duato-based deadlock avoidance.
    Atomic,
    /// A VC may be reallocated as soon as the previous packet's tail flit
    /// has been forwarded, letting multiple packets queue in one VC FIFO.
    NonAtomic,
}

/// Everything a routing algorithm may inspect when routing one head packet.
pub struct RoutingCtx<'a> {
    /// The topology (mesh, torus, ring, ...; a two-word `Copy` value).
    pub topo: AnyTopology,
    /// The router making the decision.
    pub current: NodeId,
    /// Source endpoint of the packet.
    pub src: NodeId,
    /// Destination endpoint of the packet.
    pub dest: NodeId,
    /// Input port the packet arrived on (`Local` at injection).
    pub input_port: Port,
    /// Input VC the packet occupies.
    pub input_vc: VcId,
    /// The packet is currently traveling on the escape channel and must obey
    /// the escape routing function (sticky escape under Duato's theory).
    pub on_escape: bool,
    /// VCs per physical channel.
    pub num_vcs: usize,
    /// Local output-VC state (credits, owners).
    pub ports: &'a dyn PortStateView,
    /// Remote congestion side-band (used by DBAR only).
    pub congestion: &'a dyn CongestionView,
    /// Link liveness under the active fault state ([`crate::AllLinksUp`]
    /// outside the simulator / without a fault plan).
    pub links: &'a dyn LinkStateView,
}

impl<'a> RoutingCtx<'a> {
    /// Number of escape VCs reserved under this algorithm layout: the
    /// topology's escape-class count (1 on meshes, 2 on wrapping fabrics)
    /// when an escape layer exists, 0 otherwise.
    #[inline]
    pub fn escape_vcs(&self, has_escape: bool) -> usize {
        if has_escape {
            self.topo.escape_vcs()
        } else {
            0
        }
    }

    /// First adaptive VC index for this algorithm layout: the indices below
    /// it belong to the escape classes.
    #[inline]
    pub fn adaptive_lo(&self, has_escape: bool) -> usize {
        self.escape_vcs(has_escape)
    }

    /// `true` if taking `dir` here is useful for this packet: the link is
    /// up and the downstream router can still reach the destination (see
    /// [`LinkStateView::usable`]). Adaptive algorithms filter their
    /// candidate sets through this before selection.
    #[inline]
    pub fn usable(&self, dir: Direction) -> bool {
        self.links.usable(self.current, dir, self.src, self.dest)
    }

    /// The escape-channel direction for this packet: dimension-order (X
    /// first), the deadlock-free baseline route of Duato's theory.
    /// `None` when the packet is already at its destination router.
    ///
    /// Under faults the escape path degrades gracefully: if the X-first
    /// step is unusable the Y step is offered instead (the dimension-order
    /// restriction is what keeps the escape network acyclic, and the
    /// reduced channel set preserves acyclicity), and `None` is returned
    /// when neither productive step survives the mask.
    pub fn escape_dir(&self) -> Option<Direction> {
        let dirs = self.topo.minimal_dirs(self.current, self.dest);
        [dirs.x, dirs.y]
            .into_iter()
            .flatten()
            .find(|&d| self.usable(d))
    }

    /// The escape hop for this packet: the dimension-order direction plus
    /// the escape-VC class of that channel. On meshes the class is always
    /// [`VcId::ESCAPE`]; wrapping topologies return class 0 or 1 by the
    /// dateline rule ([`footprint_topology::Topology::escape_class`]).
    pub fn escape_hop(&self) -> Option<(Direction, VcId)> {
        let dir = self.escape_dir()?;
        let class = self.topo.escape_class(self.current, self.dest, dir);
        Some((dir, VcId::from_index(usize::from(class))))
    }

    /// Appends the canonical lowest-priority escape request (Duato's
    /// always-requestable escape channel) if a productive escape hop
    /// survives the fault mask.
    #[inline]
    pub fn push_escape_request(&self, out: &mut Vec<VcRequest>) {
        if let Some((dir, vc)) = self.escape_hop() {
            out.push(VcRequest::new(Port::Dir(dir), vc, Priority::Lowest));
        }
    }
}

/// How an algorithm's deadlock-freedom argument extends to wrapping
/// topologies (torus, ring), where minimal routes can close cycles through
/// the wraparound channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WrapStrategy {
    /// The algorithm routes only on the acyclic (non-wraparound) channel
    /// subgraph — [`footprint_topology::Topology::acyclic_minimal_dirs`] —
    /// so its mesh CDG argument applies verbatim (turn models).
    AcyclicSubgraph,
    /// Duato escape VCs with dateline classes: the topology's
    /// `escape_vcs()` lowest VC indices form a layered acyclic escape
    /// network (fully adaptive algorithms).
    EscapeVcs,
    /// Every channel's VCs are split into two dateline half-classes and the
    /// crossing rule picks the class per hop (DOR on tori and rings).
    DatelineVcClasses,
    /// No deadlock-freedom argument exists for this algorithm on wrapping
    /// topologies; network construction rejects the combination.
    Unsupported,
}

/// How an algorithm chooses virtual channels, used by the adaptiveness
/// metrics (§3.1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcSelection {
    /// All usable VCs are requested indiscriminately — VC adaptiveness 0 by
    /// the paper's convention (DOR, Odd-Even, DBAR).
    Oblivious,
    /// VCs are classified and prioritized dynamically (Footprint) — VC
    /// adaptiveness per the paper's Eq. (3).
    Adaptive,
    /// A static destination→VC mapping (XORDET) — the two-level
    /// adaptiveness metrics are "N/A" per Table 1's footnote.
    StaticMapped,
}

/// A minimal routing algorithm producing prioritized VC requests.
///
/// Implementations are stateless with respect to individual packets: all
/// dynamic inputs arrive through the [`RoutingCtx`], so the same object can
/// be shared by every router in the network and re-evaluated every cycle
/// while a head packet waits for a VC grant (standing requests).
pub trait RoutingAlgorithm: Send + Sync {
    /// Short name used in reports and tables ("footprint", "dbar", ...).
    fn name(&self) -> &'static str;

    /// VC reallocation policy required for this algorithm's deadlock-freedom
    /// argument.
    fn policy(&self) -> VcReallocationPolicy;

    /// `true` if the lowest VC indices of every channel are reserved as
    /// Duato escape channels (VC 0 on meshes; the topology's `escape_vcs()`
    /// dateline classes on wrapping fabrics).
    fn has_escape(&self) -> bool;

    /// How this algorithm stays deadlock-free on wrapping topologies. The
    /// default matches the common cases: Duato-based algorithms extend via
    /// dateline escape classes, escape-free ones by restricting themselves
    /// to the acyclic channel subgraph.
    fn wrap_strategy(&self) -> WrapStrategy {
        if self.has_escape() {
            WrapStrategy::EscapeVcs
        } else {
            WrapStrategy::AcyclicSubgraph
        }
    }

    /// Minimum VCs per channel this algorithm needs on `topo` for its
    /// deadlock-freedom argument: every escape class plus one adaptive VC
    /// for Duato-based algorithms, two dateline half-classes for
    /// [`WrapStrategy::DatelineVcClasses`], one otherwise.
    fn min_vcs_on(&self, topo: AnyTopology) -> usize {
        if self.has_escape() {
            return topo.escape_vcs() + 1;
        }
        if topo.wraps() && self.wrap_strategy() == WrapStrategy::DatelineVcClasses {
            return 2;
        }
        1
    }

    /// How this algorithm selects VCs (for the adaptiveness metrics).
    fn vc_selection(&self) -> VcSelection {
        VcSelection::Oblivious
    }

    /// `true` if a busy VC whose owner destination matches the packet's
    /// destination may be granted to the packet (the footprint join of §3.3,
    /// which forms virtual set-aside queues).
    fn allows_footprint_join(&self) -> bool {
        false
    }

    /// Computes the VC requests for the head packet described by `ctx`,
    /// appending them to `out` (`out` is cleared by the caller).
    ///
    /// The destination router case (`ctx.current == ctx.dest`) must emit
    /// requests on [`Port::Local`].
    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>);

    /// Computes the VC requests used at packet *injection* (selecting a VC
    /// on the source-to-router channel). The default requests every VC the
    /// algorithm may use, at `Low` priority, with the escape VC at `Lowest`.
    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let lo = ctx.adaptive_lo(self.has_escape());
        for v in lo..ctx.num_vcs {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Low));
        }
        // Every escape class is requestable at injection (one on meshes).
        for v in 0..lo {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Lowest));
        }
    }

    /// The set of output directions this algorithm could ever select at
    /// `cur` for a packet `src → dest`, independent of network state. Used
    /// by the adaptiveness metrics (§3.1); the default is fully adaptive
    /// (all minimal directions, wrap-aware on wrapping topologies).
    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        let _ = src;
        let mut set = DirSet::EMPTY;
        for d in topo.minimal_dirs(cur, dest).iter() {
            set.insert(d);
        }
        set
    }
}

/// Emits ejection requests at the destination router: every VC on the local
/// port. Shared by all algorithms (ejection is terminal, so no deadlock
/// restriction applies).
pub(crate) fn eject_requests(ctx: &RoutingCtx<'_>, out: &mut Vec<VcRequest>) {
    for v in 0..ctx.num_vcs {
        out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::High));
    }
}

/// A small set of mesh directions (bitmask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DirSet(u8);

impl DirSet {
    /// The empty set.
    pub const EMPTY: DirSet = DirSet(0);

    fn bit(d: Direction) -> u8 {
        1 << (Port::Dir(d).index() - 1)
    }

    /// Inserts a direction.
    #[inline]
    pub fn insert(&mut self, d: Direction) {
        self.0 |= Self::bit(d);
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, d: Direction) -> bool {
        self.0 & Self::bit(d) != 0
    }

    /// Number of directions in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if no direction is allowed.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained directions.
    pub fn iter(self) -> impl Iterator<Item = Direction> {
        footprint_topology::DIRECTIONS
            .into_iter()
            .filter(move |&d| self.contains(d))
    }
}

impl FromIterator<Direction> for DirSet {
    fn from_iter<T: IntoIterator<Item = Direction>>(iter: T) -> Self {
        let mut s = DirSet::EMPTY;
        for d in iter {
            s.insert(d);
        }
        s
    }
}

/// Flips a fair coin using the simulation RNG — `Random(1)` in Algorithm 1.
#[inline]
pub(crate) fn coin(rng: &mut dyn RngCore) -> bool {
    rng.next_u32() & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::AllLinksUp;
    use crate::DownLinks;
    use crate::NoCongestionInfo;
    use crate::TablePortView;

    fn ctx<'a>(
        view: &'a TablePortView,
        cong: &'a NoCongestionInfo,
        cur: u16,
        dest: u16,
    ) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: footprint_topology::Mesh::square(4).into(),
            current: NodeId(cur),
            src: NodeId(0),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: view,
            congestion: cong,
            links: &AllLinksUp,
        }
    }

    #[test]
    fn dirset_insert_and_iter() {
        let mut s = DirSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Direction::East);
        s.insert(Direction::North);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Direction::East));
        assert!(!s.contains(Direction::West));
        let dirs: Vec<_> = s.iter().collect();
        assert_eq!(dirs, vec![Direction::East, Direction::North]);
    }

    #[test]
    fn dirset_from_iterator() {
        let s: DirSet = [Direction::South, Direction::South, Direction::West]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn escape_dir_is_dimension_order() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        // (0,0) → (2,2): X first.
        let c = ctx(&view, &cong, 0, 10);
        assert_eq!(c.escape_dir(), Some(Direction::East));
        // Same column: Y.
        let c = ctx(&view, &cong, 2, 10);
        assert_eq!(c.escape_dir(), Some(Direction::North));
        // At destination: none.
        let c = ctx(&view, &cong, 10, 10);
        assert_eq!(c.escape_dir(), None);
    }

    #[test]
    fn escape_dir_falls_back_to_y_under_faults() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        // (0,0) → (2,2) with the East link out of n0 dead: escape falls
        // back to the Y step.
        let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
        let mut c = ctx(&view, &cong, 0, 10);
        c.links = &faults;
        assert_eq!(c.escape_dir(), Some(Direction::North));
        assert!(!c.usable(Direction::East));
        assert!(c.usable(Direction::North));
        // Both productive steps dead: no escape direction survives.
        let faults = DownLinks::new(vec![
            (NodeId(0), Direction::East),
            (NodeId(0), Direction::North),
        ]);
        let mut c = ctx(&view, &cong, 0, 10);
        c.links = &faults;
        assert_eq!(c.escape_dir(), None);
    }

    #[test]
    fn adaptive_lo_depends_on_escape() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let c = ctx(&view, &cong, 0, 10);
        assert_eq!(c.adaptive_lo(true), 1);
        assert_eq!(c.adaptive_lo(false), 0);
    }

    #[test]
    fn eject_requests_cover_all_local_vcs() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let c = ctx(&view, &cong, 10, 10);
        let mut out = Vec::new();
        eject_requests(&c, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.port == Port::Local));
        assert!(out.iter().all(|r| r.priority == Priority::High));
    }
}
