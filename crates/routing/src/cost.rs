//! Implementation-cost model for Footprint routing (paper §4.4).
//!
//! Footprint needs only local per-router state:
//!
//! * a `log2(V)`-bit idle-VC counter per port, and
//! * per VC, an "owner" register holding the destination of the occupying
//!   packets (`log2(N)` bits) plus a small state field.
//!
//! For the paper's 8×8 mesh with 16 VCs this comes to 132 bits per port —
//! about one extra flit-buffer entry, which is the overhead the paper
//! quotes.

/// `ceil(log2(n))`, with `log2(1) = 0`.
///
/// ```
/// use footprint_routing::cost::ceil_log2;
/// assert_eq!(ceil_log2(64), 6);
/// assert_eq!(ceil_log2(10), 4);
/// assert_eq!(ceil_log2(1), 0);
/// ```
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0, "log2 of zero");
    usize::BITS - (n - 1).leading_zeros()
}

/// Per-port storage (bits) added by Footprint routing.
///
/// `V * (log2(N) + state_bits) + log2(V)`: an owner register and VC-state
/// field per VC plus one idle-VC counter per port. With 2 state bits this
/// reproduces the paper's figure of 132 bits/port for `N = 64`, `V = 16`.
///
/// ```
/// use footprint_routing::cost::footprint_storage_bits_per_port;
/// assert_eq!(footprint_storage_bits_per_port(64, 16), 132);
/// ```
pub fn footprint_storage_bits_per_port(network_nodes: usize, num_vcs: usize) -> u32 {
    const VC_STATE_BITS: u32 = 2; // idle / active / draining
    let vcs = u32::try_from(num_vcs).expect("VC count fits in u32");
    vcs * (ceil_log2(network_nodes) + VC_STATE_BITS) + ceil_log2(num_vcs)
}

/// Total storage (bits) added per router (all ports).
pub fn footprint_storage_bits_per_router(
    network_nodes: usize,
    num_vcs: usize,
    ports: usize,
) -> u32 {
    u32::try_from(ports).expect("port count fits in u32")
        * footprint_storage_bits_per_port(network_nodes, num_vcs)
}

/// Expresses a per-port bit cost as a fraction of flit-buffer entries, the
/// unit of comparison in §4.4 ("approximately equal to another flit buffer
/// entry at each port").
pub fn cost_in_flit_entries(bits: u32, flit_width_bits: u32) -> f64 {
    bits as f64 / flit_width_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_edge_cases() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(256), 8);
        assert_eq!(ceil_log2(257), 9);
    }

    #[test]
    #[should_panic(expected = "log2 of zero")]
    fn ceil_log2_zero_panics() {
        let _ = ceil_log2(0);
    }

    #[test]
    fn paper_cost_figure_reproduced() {
        // 8×8 mesh, 16 VCs → 132 bits/port (§4.4).
        assert_eq!(footprint_storage_bits_per_port(64, 16), 132);
    }

    #[test]
    fn cost_is_about_one_flit_entry() {
        let bits = footprint_storage_bits_per_port(64, 16);
        let in_entries = cost_in_flit_entries(bits, 128);
        assert!(in_entries > 0.9 && in_entries < 1.2, "got {in_entries}");
    }

    #[test]
    fn per_router_cost_scales_with_ports() {
        assert_eq!(
            footprint_storage_bits_per_router(64, 16, 5),
            5 * footprint_storage_bits_per_port(64, 16)
        );
    }

    #[test]
    fn cost_grows_with_network_and_vcs() {
        assert!(
            footprint_storage_bits_per_port(256, 16) > footprint_storage_bits_per_port(64, 16)
        );
        assert!(footprint_storage_bits_per_port(64, 16) > footprint_storage_bits_per_port(64, 8));
    }
}
