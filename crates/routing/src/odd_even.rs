//! The Odd-Even turn model (Chiu, 2000) — the paper's partially adaptive
//! baseline.

use crate::algorithm::{coin, eject_requests, DirSet};
use crate::{Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy};
use footprint_topology::{AnyTopology, Direction, NodeId, Port};
use rand::RngCore;

/// Minimal Odd-Even adaptive routing.
///
/// Turn restrictions (Chiu's odd-even turn model, with East = +x and
/// columns indexed from 0):
///
/// * **Rule 1** — no East→North turn at a node in an even column; no
///   North→West turn at a node in an odd column.
/// * **Rule 2** — no East→South turn at a node in an even column; no
///   South→West turn at a node in an odd column.
///
/// The allowed-direction computation below is the classic minimal `ROUTE`
/// function from the odd-even paper. Deadlock-free without VCs, so all VCs
/// of a channel are adaptively usable and reallocation is non-atomic
/// (the buffer-utilization advantage the Footprint paper notes in §4.2.1).
///
/// Output selection follows the paper's methodology section: "for Odd-Even
/// routing, the number of idle VCs is used to select output ports."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OddEven;

impl OddEven {
    /// The minimal directions permitted by the odd-even turn model for a
    /// packet injected at `src`, currently at `cur`, destined to `dest`.
    ///
    /// The rules are stated over coordinate deltas, so on wrapping
    /// topologies this is exactly the odd-even relation on the acyclic
    /// (non-wraparound) channel subgraph — the mesh CDG argument carries
    /// over verbatim and wrap channels are simply never used.
    pub fn legal_dirs(topo: impl Into<AnyTopology>, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        let topo = topo.into();
        let c = topo.coord(cur);
        let s = topo.coord(src);
        let d = topo.coord(dest);
        let e0 = d.x as i32 - c.x as i32;
        let e1 = d.y as i32 - c.y as i32;
        let mut avail = DirSet::EMPTY;
        if e0 == 0 && e1 == 0 {
            return avail; // at destination
        }
        let vertical = if e1 > 0 {
            Direction::North
        } else {
            Direction::South
        };
        if e0 == 0 {
            // Same column: only the vertical direction is minimal.
            avail.insert(vertical);
        } else if e0 > 0 {
            // Eastbound.
            if e1 == 0 {
                avail.insert(Direction::East);
            } else {
                // A N/S move here implies a later N→E / S→E turn (always
                // allowed) *unless* we would need a forbidden E→N / E→S turn
                // later; taking the vertical move now is allowed only in odd
                // columns or in the source column.
                if c.x % 2 == 1 || c.x == s.x {
                    avail.insert(vertical);
                }
                // Continuing East is allowed unless the destination column is
                // even and exactly one hop away (we would be forced into an
                // E→N / E→S turn at an even column).
                if d.x % 2 == 1 || e0 != 1 {
                    avail.insert(Direction::East);
                }
            }
        } else {
            // Westbound: West is always permitted; vertical moves only in
            // even columns (N→W / S→W turns are banned in odd columns).
            avail.insert(Direction::West);
            if e1 != 0 && c.x.is_multiple_of(2) {
                avail.insert(vertical);
            }
        }
        avail
    }
}

impl RoutingAlgorithm for OddEven {
    fn name(&self) -> &'static str {
        "odd-even"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::NonAtomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        if ctx.current == ctx.dest {
            return eject_requests(ctx, out);
        }
        let legal = Self::legal_dirs(ctx.topo, ctx.current, ctx.src, ctx.dest);
        // Faulted candidates drop out of the turn-model set; the coin is
        // only consumed on a genuine two-way tie, preserving the fault-free
        // RNG sequence.
        let mut it = legal.iter().filter(|&d| ctx.usable(d));
        let dir = match (it.next(), it.next()) {
            // Every legal direction is masked: stand down and wait.
            (None, _) => return,
            (Some(d), None) => d,
            (Some(a), Some(b)) => {
                // Select by idle-VC count; random tie-break.
                let ia = ctx.ports.idle_count(Port::Dir(a), 0, ctx.num_vcs);
                let ib = ctx.ports.idle_count(Port::Dir(b), 0, ctx.num_vcs);
                match ia.cmp(&ib) {
                    core::cmp::Ordering::Greater => a,
                    core::cmp::Ordering::Less => b,
                    core::cmp::Ordering::Equal => {
                        if coin(rng) {
                            a
                        } else {
                            b
                        }
                    }
                }
            }
        };
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
        }
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Low));
        }
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        Self::legal_dirs(topo, cur, src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Mesh;

    fn dirs(mesh: Mesh, cur: u16, src: u16, dest: u16) -> DirSet {
        OddEven::legal_dirs(mesh, NodeId(cur), NodeId(src), NodeId(dest))
    }

    #[test]
    fn at_destination_no_dirs() {
        let mesh = Mesh::square(8);
        assert!(dirs(mesh, 9, 0, 9).is_empty());
    }

    #[test]
    fn same_column_goes_vertical() {
        let mesh = Mesh::square(8);
        let d = dirs(mesh, 2, 2, 18); // (2,0) → (2,2)
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::North));
    }

    #[test]
    fn same_row_eastbound_goes_east() {
        let mesh = Mesh::square(8);
        let d = dirs(mesh, 0, 0, 5);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::East));
    }

    #[test]
    fn no_east_to_vertical_turn_prepared_in_even_non_source_column() {
        let mesh = Mesh::square(8);
        // Packet from (0,0) now at (2,0), dest (5,3): even column, not the
        // source column → vertical not allowed, must continue East.
        let d = dirs(mesh, 2, 0, 29);
        assert!(!d.contains(Direction::North));
        assert!(d.contains(Direction::East));
        // Same position but odd column (3,0): both allowed.
        let d = dirs(mesh, 3, 0, 29);
        assert!(d.contains(Direction::North));
        assert!(d.contains(Direction::East));
    }

    #[test]
    fn eastbound_must_turn_before_even_destination_column() {
        let mesh = Mesh::square(8);
        // At (3,0), dest (4,3): destination column even and one hop East →
        // East would force an E→N turn at an even column, so East is banned.
        let d = dirs(mesh, 3, 0, 4 + 3 * 8);
        assert!(!d.contains(Direction::East));
        assert!(d.contains(Direction::North));
        // Destination column odd and one hop away → East allowed.
        let d = dirs(mesh, 4, 4, 5 + 3 * 8);
        assert!(d.contains(Direction::East));
    }

    #[test]
    fn westbound_vertical_only_in_even_columns() {
        let mesh = Mesh::square(8);
        // At (5,5) going to (2,2): odd column → only West.
        let d = dirs(mesh, 5 + 5 * 8, 63, 2 + 2 * 8);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::West));
        // At (4,5) same dest: even column → West and South.
        let d = dirs(mesh, 4 + 5 * 8, 63, 2 + 2 * 8);
        assert!(d.contains(Direction::West));
        assert!(d.contains(Direction::South));
    }

    #[test]
    fn legal_dirs_are_always_minimal() {
        let mesh = Mesh::square(6);
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                for cur in mesh.nodes() {
                    // Only positions that lie on some minimal path matter,
                    // but minimality of the output must hold everywhere.
                    let legal = OddEven::legal_dirs(mesh, cur, src, dest);
                    let minimal = mesh.minimal_dirs(cur, dest);
                    for d in legal.iter() {
                        assert!(
                            minimal.contains(d),
                            "non-minimal direction {d} at {cur} for {src}->{dest}"
                        );
                    }
                }
            }
        }
    }

    /// Every packet can always make progress: the legal set is non-empty at
    /// every node on any partially-routed minimal walk.
    #[test]
    fn routing_function_is_connected() {
        let mesh = Mesh::square(5);
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                if src == dest {
                    continue;
                }
                // Walk greedily following the first legal direction; must
                // arrive within the minimal hop count.
                let mut cur = src;
                let mut hops = 0;
                while cur != dest {
                    let legal = OddEven::legal_dirs(mesh, cur, src, dest);
                    let d = legal
                        .iter()
                        .next()
                        .unwrap_or_else(|| panic!("stuck at {cur} for {src}->{dest}"));
                    cur = crate::invariant::neighbor_checked(mesh, cur, d).unwrap();
                    hops += 1;
                    assert!(hops <= mesh.hops(src, dest));
                }
            }
        }
    }

    #[test]
    fn route_excludes_faulted_directions() {
        use crate::{DownLinks, NoCongestionInfo, TablePortView};
        use footprint_topology::Port;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mesh = Mesh::square(8);
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        // From (3,0) to (5,3): odd column, both East and North legal.
        let faults = DownLinks::new(vec![(NodeId(3), Direction::East)]);
        let ctx = RoutingCtx {
            topo: mesh.into(),
            current: NodeId(3),
            src: NodeId(0),
            dest: NodeId(29),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 4,
            ports: &view,
            congestion: &cong,
            links: &faults,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        OddEven.route(&ctx, &mut rng, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.port == Port::Dir(Direction::North)));
    }

    /// The odd-even turn model bans E→N and E→S turns in even columns and
    /// N→W and S→W turns in odd columns; verify on all (prev, cur) pairs of
    /// every greedy walk.
    #[test]
    fn forbidden_turns_never_taken() {
        let mesh = Mesh::square(6);
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                if src == dest {
                    continue;
                }
                // Enumerate all (cur, incoming-dir) states reachable by legal
                // moves and check turn legality.
                let mut stack = vec![(src, None::<Direction>)];
                let mut seen = std::collections::HashSet::new();
                while let Some((cur, incoming)) = stack.pop() {
                    if !seen.insert((cur, incoming)) {
                        continue;
                    }
                    let legal = OddEven::legal_dirs(mesh, cur, src, dest);
                    for out in legal.iter() {
                        if let Some(inc) = incoming {
                            let x = mesh.coord(cur).x;
                            let even = x.is_multiple_of(2);
                            let banned = match (inc, out) {
                                (Direction::East, Direction::North)
                                | (Direction::East, Direction::South) => even,
                                (Direction::North, Direction::West)
                                | (Direction::South, Direction::West) => !even,
                                _ => false,
                            };
                            assert!(
                                !banned,
                                "forbidden turn {inc}->{out} at {cur} ({src}->{dest})"
                            );
                        }
                        stack.push((
                            crate::invariant::neighbor_checked(mesh, cur, out).unwrap(),
                            Some(out),
                        ));
                    }
                }
            }
        }
    }
}
