//! Read-only views of router and network state consumed by routing
//! algorithms.
//!
//! The simulator implements these traits; the routing crate only consumes
//! them, which keeps the dependency arrow pointing from `footprint-sim` to
//! `footprint-routing` (and never back).

use crate::VcId;
use footprint_topology::{Direction, NodeId, Port};

/// Snapshot of one output VC's state, as visible to the local router.
///
/// Everything here is *local* knowledge: credit counters and the VC-owner
/// registers that the paper's §4.4 costs out (a `log2(N)`-bit "owner" per VC).
/// Footprint explicitly uses no remote congestion notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VcView {
    /// The VC is available for a fresh allocation under the active
    /// reallocation policy (atomic for Duato-based algorithms: fully drained
    /// with all credits returned; non-atomic otherwise: tail forwarded).
    pub idle: bool,
    /// Destination of the packet(s) currently occupying the VC, if any.
    /// This is the "owner" register that footprint-VC detection compares
    /// against the packet's destination.
    pub owner: Option<NodeId>,
    /// Free downstream buffer slots.
    pub credits: u32,
    /// A same-destination packet could be appended right now (previous tail
    /// already forwarded and at least one credit available).
    pub joinable: bool,
}

impl VcView {
    /// `true` if the VC currently holds (or is draining) traffic — i.e. it is
    /// not idle.
    #[inline]
    pub fn busy(&self) -> bool {
        !self.idle
    }

    /// `true` if the VC is a footprint VC for destination `dest`: its owner
    /// register holds the same destination (§3.2). The register persists
    /// after the VC drains, so a freshly drained VC remains its
    /// destination's footprint until another packet claims it.
    #[inline]
    pub fn is_footprint_for(&self, dest: NodeId) -> bool {
        self.owner == Some(dest)
    }

    /// Classifies this VC relative to destination `dest`. An owner-register
    /// match is a footprint regardless of occupancy (a drained VC stays
    /// this destination's footprint until another packet claims it).
    #[inline]
    pub fn class_for(&self, dest: NodeId) -> VcClass {
        if self.is_footprint_for(dest) {
            VcClass::Footprint
        } else if self.idle {
            VcClass::Idle
        } else {
            VcClass::Busy
        }
    }
}

/// Classification of one VC relative to a packet's destination — the three
/// tiers of Algorithm 1 step 3 (shared by Footprint and the overlay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcClass {
    /// Available for fresh allocation, no owner match.
    Idle,
    /// Owner register matches the destination (§3.2).
    Footprint,
    /// Occupied by another destination's traffic.
    Busy,
}

/// Per-router view of all output-port VC states.
pub trait PortStateView {
    /// Number of VCs per physical channel.
    fn num_vcs(&self) -> usize;

    /// Snapshot of VC `vc` at output port `port`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the port has no attached channel (e.g. a
    /// mesh-edge direction); routing algorithms only query minimal —
    /// therefore attached — ports, plus `Local`.
    fn vc(&self, port: Port, vc: VcId) -> VcView;

    /// Number of idle VCs at `port` among the VC index range `[lo, hi)`.
    fn idle_count(&self, port: Port, lo: usize, hi: usize) -> usize {
        (lo..hi)
            .filter(|&v| self.vc(port, VcId::from_index(v)).idle)
            .count()
    }

    /// Number of footprint VCs for `dest` at `port` among `[lo, hi)`.
    fn footprint_count(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> usize {
        (lo..hi)
            .filter(|&v| self.vc(port, VcId::from_index(v)).is_footprint_for(dest))
            .count()
    }

    /// Per-class VC counts `(idle, footprint, busy)` for destination `dest`
    /// at `port` among `[lo, hi)` — one bulk call instead of a virtual
    /// [`PortStateView::vc`] dispatch per VC. Backing stores with contiguous
    /// per-port state override this with a flat array scan; the default
    /// walks `vc` so table-backed test views stay correct for free.
    fn class_counts(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> (usize, usize, usize) {
        let (mut idle, mut fp, mut busy) = (0, 0, 0);
        for v in lo..hi {
            match self.vc(port, VcId::from_index(v)).class_for(dest) {
                VcClass::Idle => idle += 1,
                VcClass::Footprint => fp += 1,
                VcClass::Busy => busy += 1,
            }
        }
        (idle, fp, busy)
    }

    /// Packed per-class VC bitmasks for destination `dest` at `port` over
    /// `[lo, hi)`: bit `v` of the first mask marks an idle VC, of the
    /// second a footprint VC; busy VCs are the remaining bits of the
    /// range. One bulk call replaces a count pass plus one emission pass
    /// per class — callers derive counts with `count_ones` and emit
    /// requests by ascending bit iteration, which preserves the VC-index
    /// order the per-class scans produce. Requires `hi <= 64` (the
    /// simulator's VC-count ceiling).
    fn class_masks(&self, port: Port, dest: NodeId, lo: usize, hi: usize) -> (u64, u64) {
        debug_assert!(hi <= 64, "class_masks packs VC indices into u64 bits");
        let (mut idle, mut fp) = (0u64, 0u64);
        for v in lo..hi {
            match self.vc(port, VcId::from_index(v)).class_for(dest) {
                VcClass::Idle => idle |= 1 << v,
                VcClass::Footprint => fp |= 1 << v,
                VcClass::Busy => {}
            }
        }
        (idle, fp)
    }

    /// Calls `emit` for every VC of `class` at `port` within `[lo, hi)` in
    /// VC-index order, at most `limit` of them. The bulk counterpart of the
    /// per-class request-emission scans in Algorithm 1 step 3; overriding
    /// implementations must preserve the ascending VC order (grant
    /// arbitration depends on request order).
    #[allow(clippy::too_many_arguments)]
    fn for_each_in_class(
        &self,
        port: Port,
        dest: NodeId,
        lo: usize,
        hi: usize,
        class: VcClass,
        limit: usize,
        emit: &mut dyn FnMut(VcId),
    ) {
        let mut emitted = 0;
        for v in lo..hi {
            if emitted >= limit {
                break;
            }
            let vc = VcId::from_index(v);
            if self.vc(port, vc).class_for(dest) == class {
                emit(vc);
                emitted += 1;
            }
        }
    }
}

/// Link liveness and usability, as surfaced to routing algorithms by the
/// fault-injection subsystem.
///
/// Routing algorithms consult this view to exclude faulted output ports
/// from their candidate sets (via [`crate::RoutingCtx::usable`]). The
/// default implementation — and the [`AllLinksUp`] fixture — reports every
/// link healthy, so a network without a fault plan never pays for the
/// indirection in changed behaviour.
pub trait LinkStateView {
    /// `true` if the directed channel leaving `node` toward `dir` currently
    /// accepts new traffic (it may still be degraded in bandwidth).
    fn link_up(&self, node: NodeId, dir: Direction) -> bool {
        let _ = (node, dir);
        true
    }

    /// `true` if taking `dir` at `node` is *useful* for a packet
    /// `src → dest`: the link is up and the downstream router can still
    /// reach `dest` under this network's routing function and fault state.
    /// This keeps adaptive packets from entering dead-end regions a healthy
    /// first hop would otherwise hide.
    fn usable(&self, node: NodeId, dir: Direction, src: NodeId, dest: NodeId) -> bool {
        let _ = (src, dest);
        self.link_up(node, dir)
    }
}

/// A [`LinkStateView`] with no faults anywhere — the state of a healthy
/// network, and the default for contexts built outside the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllLinksUp;

impl LinkStateView for AllLinksUp {}

/// Network-level congestion information used by DBAR's selection function.
///
/// DBAR propagates per-channel occupancy along each dimension through a
/// side-band network; the simulator models that side band and exposes it
/// through this trait. Algorithms that use only local state (DOR, Odd-Even,
/// Footprint) never call it.
pub trait CongestionView {
    /// `true` if the channel leaving `node` in direction `dir` is congested
    /// (downstream input-buffer occupancy at or above the DBAR threshold,
    /// V/2 in the paper's configuration).
    fn channel_congested(&self, node: NodeId, dir: Direction) -> bool;
}

/// A [`CongestionView`] that reports no congestion anywhere. Useful for unit
/// tests and for algorithms that ignore remote state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCongestionInfo;

impl CongestionView for NoCongestionInfo {
    fn channel_congested(&self, _node: NodeId, _dir: Direction) -> bool {
        false
    }
}

/// An in-memory [`LinkStateView`] for tests: an explicit list of dead
/// directed channels. `usable` inherits the default (liveness only).
///
/// ```
/// use footprint_routing::{DownLinks, LinkStateView};
/// use footprint_topology::{Direction, NodeId};
///
/// let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
/// assert!(!faults.link_up(NodeId(0), Direction::East));
/// assert!(faults.link_up(NodeId(0), Direction::North));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DownLinks {
    down: Vec<(NodeId, Direction)>,
}

impl DownLinks {
    /// Creates a view where exactly the listed directed channels are down.
    pub fn new(down: Vec<(NodeId, Direction)>) -> Self {
        DownLinks { down }
    }
}

impl LinkStateView for DownLinks {
    fn link_up(&self, node: NodeId, dir: Direction) -> bool {
        !self.down.contains(&(node, dir))
    }
}

/// An in-memory [`PortStateView`] for tests: a table of [`VcView`]s.
///
/// ```
/// use footprint_routing::{TablePortView, VcView, VcId, PortStateView};
/// use footprint_topology::{Port, Direction};
///
/// let mut t = TablePortView::new(4);
/// t.set(Port::Dir(Direction::East), VcId(1), VcView { idle: true, credits: 4, ..Default::default() });
/// assert_eq!(t.idle_count(Port::Dir(Direction::East), 0, 4), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TablePortView {
    num_vcs: usize,
    table: Vec<VcView>, // [port][vc]
}

impl TablePortView {
    /// Creates a view with `num_vcs` VCs per port, all defaulted (busy,
    /// no owner, zero credits).
    pub fn new(num_vcs: usize) -> Self {
        TablePortView {
            num_vcs,
            table: vec![VcView::default(); footprint_topology::PORT_COUNT * num_vcs],
        }
    }

    /// Creates a view where every VC is idle with `credits` credits — the
    /// zero-load network state.
    pub fn all_idle(num_vcs: usize, credits: u32) -> Self {
        let mut v = Self::new(num_vcs);
        for slot in &mut v.table {
            *slot = VcView {
                idle: true,
                owner: None,
                credits,
                joinable: false,
            };
        }
        v
    }

    /// Sets the state of one VC.
    pub fn set(&mut self, port: Port, vc: VcId, view: VcView) {
        let idx = port.index() * self.num_vcs + vc.index();
        self.table[idx] = view;
    }
}

impl PortStateView for TablePortView {
    fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    fn vc(&self, port: Port, vc: VcId) -> VcView {
        self.table[port.index() * self.num_vcs + vc.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Direction;

    #[test]
    fn footprint_detection_requires_busy_and_matching_owner() {
        let v = VcView {
            idle: false,
            owner: Some(NodeId(13)),
            credits: 2,
            joinable: true,
        };
        assert!(v.is_footprint_for(NodeId(13)));
        assert!(!v.is_footprint_for(NodeId(12)));
        let idle = VcView {
            idle: true,
            owner: None,
            credits: 4,
            joinable: false,
        };
        assert!(!idle.is_footprint_for(NodeId(13)));
    }

    #[test]
    fn table_view_counts() {
        let mut t = TablePortView::new(4);
        let e = Port::Dir(Direction::East);
        t.set(
            e,
            VcId(0),
            VcView {
                idle: true,
                credits: 4,
                ..Default::default()
            },
        );
        t.set(
            e,
            VcId(1),
            VcView {
                idle: false,
                owner: Some(NodeId(7)),
                credits: 1,
                joinable: true,
            },
        );
        assert_eq!(t.idle_count(e, 0, 4), 1);
        assert_eq!(t.idle_count(e, 1, 4), 0);
        assert_eq!(t.footprint_count(e, NodeId(7), 0, 4), 1);
        assert_eq!(t.footprint_count(e, NodeId(8), 0, 4), 0);
    }

    #[test]
    fn all_idle_view_is_uncongested() {
        let t = TablePortView::all_idle(10, 4);
        assert_eq!(t.idle_count(Port::Local, 0, 10), 10);
        assert_eq!(t.num_vcs(), 10);
    }

    #[test]
    fn no_congestion_info_is_always_clear() {
        let info = NoCongestionInfo;
        assert!(!info.channel_congested(NodeId(0), Direction::East));
    }
}
