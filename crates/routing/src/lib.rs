//! Routing algorithms for the Footprint NoC reproduction.
//!
//! This crate implements every routing algorithm evaluated in *"Footprint:
//! Regulating Routing Adaptiveness in Networks-on-Chip"* (Fu & Kim, ISCA
//! 2017):
//!
//! * [`Footprint`] — the paper's contribution (Algorithm 1): fully adaptive
//!   routing that regulates its own adaptiveness by preferring *footprint
//!   VCs* (VCs already occupied by packets to the same destination) when the
//!   network is congested.
//! * [`Dbar`] — the fully adaptive baseline (destination-based adaptive
//!   routing, Duato escape channel, side-band congestion selection).
//! * [`OddEven`] — the partially adaptive turn-model baseline.
//! * [`Dor`] — dimension-order routing, the deterministic baseline.
//! * [`Xordet`] — the static HoL-blocking-aware VC mapping, composable with
//!   any of the above (`DOR+XORDET`, `Odd-Even+XORDET`, `DBAR+XORDET`).
//!
//! A routing decision is not a single output; it is a **prioritized set of
//! VC requests** ([`VcRequest`]) handed to the router's priority-based VC
//! allocator — the representation Algorithm 1 is written in.
//!
//! The crate also provides the paper's analytical tooling: the two-level
//! adaptiveness metrics of §3.1 ([`adaptiveness`]) and the hardware cost
//! model of §4.4 ([`cost`]).
//!
//! # Example
//!
//! ```
//! use footprint_routing::{Footprint, RoutingAlgorithm, RoutingCtx, VcId,
//!                         TablePortView, NoCongestionInfo, AllLinksUp};
//! use footprint_topology::{Mesh, NodeId, Port};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let view = TablePortView::all_idle(10, 4);
//! let ctx = RoutingCtx {
//!     topo: Mesh::square(8).into(),
//!     current: NodeId(0),
//!     src: NodeId(0),
//!     dest: NodeId(63),
//!     input_port: Port::Local,
//!     input_vc: VcId(1),
//!     on_escape: false,
//!     num_vcs: 10,
//!     ports: &view,
//!     congestion: &NoCongestionInfo,
//!     links: &AllLinksUp,
//! };
//! let mut out = Vec::new();
//! Footprint::new().route(&ctx, &mut SmallRng::seed_from_u64(1), &mut out);
//! assert!(!out.is_empty());
//! ```

#![warn(missing_docs)]

pub mod adaptiveness;
mod algorithm;
pub mod cdg;
pub mod cost;
mod dbar;
mod dor;
mod footprint;
pub mod invariant;
mod odd_even;
mod overlay;
mod request;
mod spec;
mod turn_model;
mod view;
mod voqsw;
mod xordet;

pub use algorithm::{
    DirSet, RoutingAlgorithm, RoutingCtx, VcReallocationPolicy, VcSelection, WrapStrategy,
};
pub use dbar::{dbar_threshold, Dbar};
pub use dor::{Dor, RandomMinimal};
pub use footprint::Footprint;
pub use invariant::{escape_request, escape_request_within, neighbor_checked, InvariantError};
pub use odd_even::OddEven;
pub use overlay::FootprintOverlay;
pub use request::{Priority, VcId, VcRequest};
pub use spec::{ParseRoutingSpecError, RoutingSpec};
pub use turn_model::{NorthLast, WestFirst};
pub use view::{
    AllLinksUp, CongestionView, DownLinks, LinkStateView, NoCongestionInfo, PortStateView,
    TablePortView, VcClass, VcView,
};
pub use voqsw::{dor_output_port, VoqSw};
pub use xordet::{xordet_class, Xordet};
