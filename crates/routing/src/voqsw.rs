//! VOQ_sw-style VC mapping (McKeown et al., INFOCOM 1996; applied to NoCs
//! as in the Footprint paper's footnote 5).
//!
//! VOQ_sw dedicates the VCs of each input port to the *output ports* of the
//! local switch, removing head-of-line blocking between packets that leave
//! through different outputs. The paper configured 10 VCs per channel
//! partly "to facilitate the implementation of VOQ_sw" (two VCs per output
//! port of a 5-port router), though it reports XORDET results instead.
//! This implementation completes that comparison point.

use crate::{
    DirSet, Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy,
};
use footprint_topology::{AnyTopology, NodeId, Port, PORT_COUNT};
use rand::RngCore;

/// The output port a packet will take at router `node` under
/// dimension-order routing (`Local` at the destination). This is the
/// downstream output that VOQ_sw keys its VC classes on: it must be
/// computable by the *upstream* router, hence the deterministic routing
/// function.
pub fn dor_output_port(topo: impl Into<AnyTopology>, node: NodeId, dest: NodeId) -> Port {
    let dirs = topo.into().minimal_dirs(node, dest);
    match dirs.x.or(dirs.y) {
        Some(d) => Port::Dir(d),
        None => Port::Local,
    }
}

/// Wraps a routing algorithm and replaces its VC selection with a VOQ_sw
/// mapping: the VC on each channel is chosen by the packet's output port at
/// the *downstream* router, so packets leaving through different switch
/// outputs never share a VC FIFO.
///
/// With `V` VCs per channel, each of the five downstream outputs gets
/// `⌊V/5⌋`-or-so VCs (`class * range / PORT_COUNT` striping). The escape VC
/// of Duato-based inner algorithms is preserved untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoqSw<A> {
    inner: A,
    name: &'static str,
}

impl<A: RoutingAlgorithm> VoqSw<A> {
    /// Wraps `inner`, giving the combination a display name (e.g.
    /// `"dor+voqsw"`).
    pub fn new(inner: A, name: &'static str) -> Self {
        VoqSw { inner, name }
    }

    /// The VC that VOQ_sw maps a packet to on the channel out of `port`,
    /// given the algorithm's VC layout.
    pub fn mapped_vc(&self, ctx: &RoutingCtx<'_>, port: Port, dest: NodeId) -> VcId {
        let lo = ctx.adaptive_lo(self.inner.has_escape());
        let range = ctx.num_vcs - lo;
        debug_assert!(range > 0, "VOQ_sw needs at least one mappable VC");
        let downstream = match port {
            Port::Local => dest, // injection: the local router itself
            Port::Dir(d) => {
                match crate::invariant::neighbor_checked(ctx.topo, ctx.current, d) {
                    Ok(n) => n,
                    Err(e) => {
                        // Minimal ports always have a neighbor; degrade to
                        // the local class instead of aborting the sweep.
                        crate::invariant::report_violation(&e);
                        ctx.current
                    }
                }
            }
        };
        let class = dor_output_port(ctx.topo, downstream, dest).index();
        // Stripe the available VCs across the five output classes.
        VcId::from_index(lo + class * range / PORT_COUNT)
    }

    /// Rewrites the tail `reqs[start..]` so each port requests only its
    /// VOQ_sw VC (escape requests pass through).
    ///
    /// In-place rewrite, same scheme as `Xordet::remap`: per-port state in
    /// fixed arrays, escapes compacted to the front of the tail, mapped
    /// requests appended, then a rotation restores the
    /// `[mapped..., escapes...]` order — no per-call allocation.
    fn remap(&self, ctx: &RoutingCtx<'_>, reqs: &mut Vec<VcRequest>, start: usize) {
        let has_escape = self.inner.has_escape();
        // Highest priority seen per port, ports kept in first-seen order.
        let mut best: [Option<Priority>; PORT_COUNT] = [None; PORT_COUNT];
        let mut port_order = [Port::Local; PORT_COUNT];
        let mut num_ports = 0;
        let mut write = start;
        for read in start..reqs.len() {
            let r = reqs[read];
            if has_escape && r.vc == VcId::ESCAPE {
                reqs[write] = r;
                write += 1;
                continue;
            }
            let slot = &mut best[r.port.index()];
            match slot {
                Some(pri) => *pri = (*pri).max(r.priority),
                None => {
                    *slot = Some(r.priority);
                    port_order[num_ports] = r.port;
                    num_ports += 1;
                }
            }
        }
        let num_escapes = write - start;
        reqs.truncate(write);
        for &port in &port_order[..num_ports] {
            // Listed ports always have a recorded priority; skip (rather
            // than panic) if that bookkeeping is ever violated.
            let Some(pri) = best[port.index()] else { continue };
            let vc = self.mapped_vc(ctx, port, ctx.dest);
            reqs.push(VcRequest::new(port, vc, pri));
        }
        // [escapes..., mapped...] → [mapped..., escapes...].
        reqs[start..].rotate_left(num_escapes);
    }
}

impl<A: RoutingAlgorithm> RoutingAlgorithm for VoqSw<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn policy(&self) -> VcReallocationPolicy {
        self.inner.policy()
    }

    fn has_escape(&self) -> bool {
        self.inner.has_escape()
    }

    fn allows_footprint_join(&self) -> bool {
        // Same rationale as XORDET: the class VC must admit queued packets.
        true
    }

    fn vc_selection(&self) -> crate::VcSelection {
        crate::VcSelection::StaticMapped
    }

    fn wrap_strategy(&self) -> crate::WrapStrategy {
        // Same restriction as XORDET: the static per-output VC classes
        // leave no room for dateline classes, so VOQ_sw stays mesh-only.
        crate::WrapStrategy::Unsupported
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let start = out.len();
        self.inner.route(ctx, rng, out);
        if ctx.current == ctx.dest {
            return; // ejection: no remapping
        }
        self.remap(ctx, out, start);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        let start = out.len();
        self.inner.injection_requests(ctx, rng, out);
        self.remap(ctx, out, start);
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, src: NodeId, dest: NodeId) -> DirSet {
        self.inner.allowed_dirs(topo, cur, src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dor, NoCongestionInfo, TablePortView};
    use footprint_topology::{Direction, Mesh};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mk_ctx<'a>(
        view: &'a TablePortView,
        cong: &'a NoCongestionInfo,
        cur: u16,
        dest: u16,
    ) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: Mesh::square(4).into(),
            current: NodeId(cur),
            src: NodeId(cur),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(0),
            on_escape: false,
            num_vcs: 10,
            ports: view,
            congestion: cong,
            links: &crate::AllLinksUp,
        }
    }

    #[test]
    fn dor_output_port_matches_xy_routing() {
        let mesh = Mesh::square(4);
        // n0 → n10 = (2,2): X first.
        assert_eq!(
            dor_output_port(mesh, NodeId(0), NodeId(10)),
            Port::Dir(Direction::East)
        );
        // n2 → n10: same column → North.
        assert_eq!(
            dor_output_port(mesh, NodeId(2), NodeId(10)),
            Port::Dir(Direction::North)
        );
        // At the destination: Local.
        assert_eq!(dor_output_port(mesh, NodeId(10), NodeId(10)), Port::Local);
    }

    #[test]
    fn packets_to_different_downstream_outputs_use_different_vcs() {
        let view = TablePortView::all_idle(10, 4);
        let cong = NoCongestionInfo;
        let algo = VoqSw::new(Dor, "dor+voqsw");
        // From n0, both packets go East to n1; at n1 the n3 packet continues
        // East while the n5 packet turns North → distinct VC classes.
        let ctx_a = mk_ctx(&view, &cong, 0, 3);
        let ctx_b = mk_ctx(&view, &cong, 0, 5);
        let east = Port::Dir(Direction::East);
        let vc_a = algo.mapped_vc(&ctx_a, east, NodeId(3));
        let vc_b = algo.mapped_vc(&ctx_b, east, NodeId(5));
        assert_ne!(vc_a, vc_b);
    }

    #[test]
    fn packets_ejecting_downstream_get_the_local_class() {
        let view = TablePortView::all_idle(10, 4);
        let cong = NoCongestionInfo;
        let algo = VoqSw::new(Dor, "dor+voqsw");
        // n0 → n1: at n1 the packet ejects (Local class = 0 → VC 0).
        let ctx = mk_ctx(&view, &cong, 0, 1);
        let vc = algo.mapped_vc(&ctx, Port::Dir(Direction::East), NodeId(1));
        assert_eq!(vc, VcId(0));
    }

    #[test]
    fn route_requests_one_mapped_vc() {
        let view = TablePortView::all_idle(10, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 0, 10);
        let algo = VoqSw::new(Dor, "dor+voqsw");
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        algo.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, Port::Dir(Direction::East));
    }

    #[test]
    fn name_and_policy_delegate() {
        let algo = VoqSw::new(Dor, "dor+voqsw");
        assert_eq!(algo.name(), "dor+voqsw");
        assert_eq!(algo.policy(), VcReallocationPolicy::NonAtomic);
        assert_eq!(algo.vc_selection(), crate::VcSelection::StaticMapped);
    }
}
