//! DBAR-style fully-adaptive routing (Ma, Enright Jerger & Wang, ISCA 2011)
//! — the paper's fully adaptive baseline.

use crate::algorithm::{coin, eject_requests};
use crate::{Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy};
use footprint_topology::{Direction, Port};
use rand::RngCore;

/// Destination-Based Adaptive Routing.
///
/// DBAR is a minimal fully-adaptive routing algorithm built on Duato's
/// theory (VC 0 is the escape channel, routed dimension-order). Its
/// contribution is the *selection function*: instead of looking only at the
/// neighboring router, each node receives per-dimension occupancy bits
/// through a side band and considers only the portion of the dimension that
/// the packet would actually traverse (the destination-based part).
///
/// This implementation reproduces that behaviour at the level the Footprint
/// paper depends on:
///
/// * both productive ports are candidates (full port adaptiveness);
/// * the selected port minimizes the number of congested channels on the
///   segment the packet would traverse in that dimension (side-band
///   information via [`crate::CongestionView`], threshold V/2 as configured
///   in the paper's methodology);
/// * ties break on the local idle-VC count, then randomly;
/// * VC selection within the port is oblivious — all adaptive VCs are
///   requested with equal priority. This is precisely the "poor VC
///   adaptiveness" behaviour Table 1 ascribes to DBAR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dbar;

impl Dbar {
    /// Number of congested channels on the segment `cur → turn point` in
    /// direction `dir` (the destination-relevant part of the dimension).
    fn segment_congestion(ctx: &RoutingCtx<'_>, dir: Direction) -> u32 {
        let topo = ctx.topo;
        let mut node = ctx.current;
        let dest = topo.coord(ctx.dest);
        let mut count = 0;
        loop {
            let c = topo.coord(node);
            let done = match dir {
                Direction::East | Direction::West => c.x == dest.x,
                Direction::North | Direction::South => c.y == dest.y,
            };
            if done {
                break;
            }
            if ctx.congestion.channel_congested(node, dir) {
                count += 1;
            }
            node = match topo.neighbor(node, dir) {
                Some(n) => n,
                None => break,
            };
        }
        count
    }
}

impl RoutingAlgorithm for Dbar {
    fn name(&self) -> &'static str {
        "dbar"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        true
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        // Escape arrivals re-enter the adaptive channels (Duato's theory);
        // the escape request below keeps the escape network reachable.
        let dirs = ctx.topo.minimal_dirs(ctx.current, ctx.dest);
        if dirs.count() == 0 {
            return eject_requests(ctx, out);
        }
        // Faulted or dead-end candidates drop out before selection; the
        // RNG is only consumed on a genuine two-way tie, preserving the
        // fault-free sequence.
        let ux = dirs.x.filter(|&d| ctx.usable(d));
        let uy = dirs.y.filter(|&d| ctx.usable(d));
        let dir = match (ux, uy) {
            // Both productive channels masked: nothing to request (the
            // escape shares those channels, so it is masked too).
            (None, None) => return,
            (Some(d), None) | (None, Some(d)) => d,
            (Some(a), Some(b)) => {
                // Fewest congested downstream channels wins; tie on local
                // idle VCs; then random.
                let ca = Self::segment_congestion(ctx, a);
                let cb = Self::segment_congestion(ctx, b);
                match ca.cmp(&cb) {
                    core::cmp::Ordering::Less => a,
                    core::cmp::Ordering::Greater => b,
                    core::cmp::Ordering::Equal => {
                        let lo = ctx.adaptive_lo(true);
                        let ia = ctx.ports.idle_count(Port::Dir(a), lo, ctx.num_vcs);
                        let ib = ctx.ports.idle_count(Port::Dir(b), lo, ctx.num_vcs);
                        match ia.cmp(&ib) {
                            core::cmp::Ordering::Greater => a,
                            core::cmp::Ordering::Less => b,
                            core::cmp::Ordering::Equal => {
                                if coin(rng) {
                                    a
                                } else {
                                    b
                                }
                            }
                        }
                    }
                }
            }
        };
        // Oblivious VC selection: all adaptive VCs, equal priority.
        for v in ctx.adaptive_lo(true)..ctx.num_vcs {
            out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
        }
        ctx.push_escape_request(out);
    }
}

/// The DBAR congestion threshold used in the paper's methodology: half the
/// VCs of a physical channel.
pub fn dbar_threshold(num_vcs: usize) -> usize {
    num_vcs / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CongestionView, NoCongestionInfo, TablePortView};
    use footprint_topology::{Mesh, NodeId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct EastCongested;
    impl CongestionView for EastCongested {
        fn channel_congested(&self, _node: NodeId, dir: Direction) -> bool {
            dir == Direction::East
        }
    }

    fn mk_ctx<'a>(
        view: &'a TablePortView,
        cong: &'a dyn CongestionView,
        cur: u16,
        dest: u16,
        on_escape: bool,
    ) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: Mesh::square(8).into(),
            current: NodeId(cur),
            src: NodeId(cur),
            dest: NodeId(dest),
            input_port: Port::Local,
            input_vc: VcId(1),
            on_escape,
            num_vcs: 4,
            ports: view,
            congestion: cong,
            links: &crate::AllLinksUp,
        }
    }

    #[test]
    fn faulted_dimension_is_never_selected() {
        use crate::DownLinks;
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
        let mut ctx = mk_ctx(&view, &cong, 0, 63, false);
        ctx.links = &faults;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            Dbar.route(&ctx, &mut rng, &mut out);
            assert!(!out.is_empty(), "seed {seed}");
            assert!(
                out.iter().all(|r| r.port == Port::Dir(Direction::North)),
                "seed {seed}: {out:?}"
            );
        }
    }

    #[test]
    fn avoids_congested_dimension() {
        let view = TablePortView::all_idle(4, 4);
        let cong = EastCongested;
        let ctx = mk_ctx(&view, &cong, 0, 63, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        let adaptive: Vec<_> = out.iter().filter(|r| r.vc != VcId::ESCAPE).collect();
        assert!(!adaptive.is_empty());
        assert!(adaptive
            .iter()
            .all(|r| r.port == Port::Dir(Direction::North)));
    }

    #[test]
    fn requests_all_adaptive_vcs_plus_escape() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 0, 63, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        assert_eq!(out.len(), 4); // 3 adaptive + escape
        assert_eq!(out.iter().filter(|r| r.vc == VcId::ESCAPE).count(), 1);
        let esc = crate::invariant::escape_request(&out, NodeId(0), NodeId(63)).unwrap();
        assert_eq!(esc.priority, Priority::Lowest);
        // Escape follows DOR: X first.
        assert_eq!(esc.port, Port::Dir(Direction::East));
    }

    #[test]
    fn escape_arrivals_reenter_adaptive_channels() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 0, 63, true);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        // Full adaptive request set, not just the escape continuation.
        assert!(out.iter().any(|r| r.vc != VcId::ESCAPE));
        // The escape network stays requested (deadlock-freedom invariant).
        assert!(out
            .iter()
            .any(|r| r.vc == VcId::ESCAPE && r.priority == Priority::Lowest));
    }

    #[test]
    fn single_productive_dimension_is_forced() {
        let view = TablePortView::all_idle(4, 4);
        let cong = EastCongested; // congestion cannot re-route a forced dim
        let ctx = mk_ctx(&view, &cong, 0, 7, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        assert!(out
            .iter()
            .all(|r| r.port == Port::Dir(Direction::East)));
    }

    #[test]
    fn ejects_at_destination() {
        let view = TablePortView::all_idle(4, 4);
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 9, 9, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        assert!(out.iter().all(|r| r.port == Port::Local));
    }

    #[test]
    fn idle_vc_tiebreak_prefers_freer_port() {
        use crate::VcView;
        let mut view = TablePortView::all_idle(4, 4);
        // Make East's adaptive VCs busy; North stays idle.
        for v in 1..4 {
            view.set(
                Port::Dir(Direction::East),
                VcId(v),
                VcView {
                    idle: false,
                    owner: Some(NodeId(1)),
                    credits: 0,
                    joinable: false,
                },
            );
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong, 0, 63, false);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        Dbar.route(&ctx, &mut rng, &mut out);
        let adaptive: Vec<_> = out.iter().filter(|r| r.vc != VcId::ESCAPE).collect();
        assert!(adaptive
            .iter()
            .all(|r| r.port == Port::Dir(Direction::North)));
    }

    #[test]
    fn threshold_is_half_the_vcs() {
        assert_eq!(dbar_threshold(10), 5);
        assert_eq!(dbar_threshold(2), 1);
    }
}
