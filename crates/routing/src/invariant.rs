//! Typed routing-invariant checks.
//!
//! Routing functions uphold structural invariants — a minimal output port
//! always has a downstream neighbor, a Duato-based request set always
//! contains the escape channel. Violations used to surface as bare
//! `.unwrap()` panics deep inside a sweep, aborting hours of simulation
//! with a one-line message. The helpers here return a typed
//! [`InvariantError`] instead, whose `Display` renders a watchdog-style
//! diagnostic (the node, the request set, the direction that fell off the
//! mesh) so a violation becomes an artifact to debug rather than a crash
//! to reproduce.
//!
//! Hot paths that cannot propagate a `Result` (e.g. `route()` filling a
//! request buffer) degrade gracefully through [`report_violation`]: the
//! diagnostic is printed once to stderr, debug builds still assert, and the
//! caller falls back to a safe default.

use core::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::request::{VcId, VcRequest};
use footprint_topology::{AnyTopology, Direction, NodeId, Port};

/// A violated routing invariant, carrying enough context to render a
/// self-contained diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantError {
    /// A routing decision pointed off the edge of the fabric: `dir` from
    /// `node` has no neighbor. Minimal routing can never do this, so either
    /// the direction set or the topology geometry is corrupted.
    MissingNeighbor {
        /// Node the direction was taken from.
        node: NodeId,
        /// The offending direction.
        dir: Direction,
    },
    /// A Duato-based request set contains no escape-channel request —
    /// deadlock freedom rests on the escape VC always being requestable.
    MissingEscapeRequest {
        /// Router evaluating the routing function.
        current: NodeId,
        /// Destination of the packet being routed.
        dest: NodeId,
        /// The full (escape-free) request set, for the diagnostic.
        requests: Vec<VcRequest>,
    },
    /// A busy (allocated or draining) output VC whose destination owner
    /// register is unset. Algorithm 1's footprint classification reads the
    /// owner of every busy VC; an unset register on a busy VC means the
    /// allocation path skipped the register write and every subsequent
    /// footprint count at this channel is silently wrong.
    UnsetFootprintOwner {
        /// Router (or source endpoint) owning the output VC.
        node: NodeId,
        /// Output port of the VC.
        port: Port,
        /// The VC with the unset register.
        vc: VcId,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::MissingNeighbor { node, dir } => write!(
                f,
                "routing invariant violated: direction {dir} from {node} leaves the fabric \
                 (minimal routing cannot step off the edge; the direction set or topology \
                 geometry is corrupted)"
            ),
            InvariantError::MissingEscapeRequest {
                current,
                dest,
                requests,
            } => {
                write!(
                    f,
                    "routing invariant violated: no escape-VC request at {current} for a \
                     packet to {dest} (Duato deadlock freedom requires {} in every request \
                     set); emitted requests: [",
                    VcId::ESCAPE
                )?;
                for (i, r) in requests.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{r}")?;
                }
                f.write_str("]")
            }
            InvariantError::UnsetFootprintOwner { node, port, vc } => write!(
                f,
                "routing invariant violated: output VC {port}/{vc} at {node} is busy with an \
                 unset owner register (Algorithm 1 classifies busy VCs by owner; an unset \
                 register corrupts every footprint count at this channel)"
            ),
        }
    }
}

impl std::error::Error for InvariantError {}

/// The neighbor of `node` in direction `dir`, or a typed error if the step
/// leaves the fabric.
///
/// # Errors
///
/// Returns [`InvariantError::MissingNeighbor`] when `node` has no neighbor
/// in `dir`.
pub fn neighbor_checked(
    topo: impl Into<AnyTopology>,
    node: NodeId,
    dir: Direction,
) -> Result<NodeId, InvariantError> {
    topo.into()
        .neighbor(node, dir)
        .ok_or(InvariantError::MissingNeighbor { node, dir })
}

/// The escape-channel request in `reqs`, or a typed error carrying the full
/// request set if the Duato invariant is violated.
///
/// Checks against the single mesh escape VC ([`VcId::ESCAPE`]); for
/// topologies with more escape classes use [`escape_request_within`].
///
/// # Errors
///
/// Returns [`InvariantError::MissingEscapeRequest`] when no request targets
/// [`VcId::ESCAPE`].
pub fn escape_request(
    reqs: &[VcRequest],
    current: NodeId,
    dest: NodeId,
) -> Result<&VcRequest, InvariantError> {
    escape_request_within(reqs, current, dest, 1)
}

/// The escape-channel request in `reqs` for a topology reserving
/// `escape_vcs` escape classes (VCs `0..escape_vcs`), or a typed error
/// carrying the full request set if the Duato invariant is violated.
///
/// # Errors
///
/// Returns [`InvariantError::MissingEscapeRequest`] when no request targets
/// a VC below `escape_vcs`.
pub fn escape_request_within(
    reqs: &[VcRequest],
    current: NodeId,
    dest: NodeId,
    escape_vcs: usize,
) -> Result<&VcRequest, InvariantError> {
    reqs.iter().find(|r| r.vc.index() < escape_vcs).ok_or_else(|| {
        InvariantError::MissingEscapeRequest {
            current,
            dest,
            requests: reqs.to_vec(),
        }
    })
}

/// Audits the owner register of one output VC against Algorithm 1's
/// footprint bookkeeping: a busy (non-idle) VC must carry the destination
/// of the packets that claimed it, because footprint classification
/// ([`VcView::is_footprint_for`](crate::VcView::is_footprint_for)) reads
/// exactly this register. Idle VCs may hold any owner (the register
/// deliberately persists across drains — that persistence *is* the
/// footprint), so only the busy/unset combination is a violation.
///
/// This is the pure audit hook the simulator's runtime sentinel calls per
/// VC; it carries no simulator state so it can be checked (and tested)
/// against table views too.
///
/// # Errors
///
/// Returns [`InvariantError::UnsetFootprintOwner`] when `idle` is `false`
/// and `owner` is `None`.
pub fn audit_footprint_owner(
    node: NodeId,
    port: Port,
    vc: VcId,
    idle: bool,
    owner: Option<NodeId>,
) -> Result<(), InvariantError> {
    if !idle && owner.is_none() {
        return Err(InvariantError::UnsetFootprintOwner { node, port, vc });
    }
    Ok(())
}

/// Reports an invariant violation from a hot path that must keep going:
/// prints the diagnostic to stderr (once per process, so a violation inside
/// the cycle loop cannot flood the console) and asserts in debug builds.
pub fn report_violation(err: &InvariantError) {
    static REPORTED: AtomicBool = AtomicBool::new(false);
    if !REPORTED.swap(true, Ordering::Relaxed) {
        eprintln!("{err}");
    }
    debug_assert!(false, "{err}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use footprint_topology::{Mesh, Port};

    #[test]
    fn neighbor_checked_steps_inside_the_mesh() {
        let mesh = Mesh::square(4);
        assert_eq!(
            neighbor_checked(mesh, NodeId(0), Direction::East).unwrap(),
            NodeId(1)
        );
    }

    #[test]
    fn neighbor_checked_reports_edge_violations() {
        let mesh = Mesh::square(4);
        let err = neighbor_checked(mesh, NodeId(0), Direction::West).unwrap_err();
        assert_eq!(
            err,
            InvariantError::MissingNeighbor {
                node: NodeId(0),
                dir: Direction::West
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("leaves the fabric"), "msg: {msg}");
        assert!(msg.contains("n0"), "msg: {msg}");
    }

    #[test]
    fn escape_request_finds_the_escape_channel() {
        let reqs = [
            VcRequest::new(Port::Dir(Direction::East), VcId(2), Priority::Low),
            VcRequest::new(Port::Dir(Direction::East), VcId::ESCAPE, Priority::Lowest),
        ];
        let esc = escape_request(&reqs, NodeId(0), NodeId(5)).unwrap();
        assert_eq!(esc.vc, VcId::ESCAPE);
    }

    #[test]
    fn owner_audit_accepts_idle_and_owned_busy_vcs() {
        let p = Port::Dir(Direction::East);
        // Idle without owner: fresh VC, fine.
        audit_footprint_owner(NodeId(0), p, VcId(1), true, None).unwrap();
        // Idle with a persistent owner: the footprint register, fine.
        audit_footprint_owner(NodeId(0), p, VcId(1), true, Some(NodeId(9))).unwrap();
        // Busy with an owner: a normal allocation, fine.
        audit_footprint_owner(NodeId(0), p, VcId(1), false, Some(NodeId(9))).unwrap();
    }

    #[test]
    fn busy_vc_with_unset_owner_is_flagged() {
        let err = audit_footprint_owner(NodeId(3), Port::Local, VcId(2), false, None).unwrap_err();
        assert_eq!(
            err,
            InvariantError::UnsetFootprintOwner {
                node: NodeId(3),
                port: Port::Local,
                vc: VcId(2)
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("unset owner register"), "msg: {msg}");
        assert!(msg.contains("n3"), "msg: {msg}");
    }

    #[test]
    fn missing_escape_yields_diagnostic_with_request_set() {
        let reqs = [VcRequest::new(
            Port::Dir(Direction::North),
            VcId(3),
            Priority::High,
        )];
        let err = escape_request(&reqs, NodeId(7), NodeId(12)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no escape-VC request"), "msg: {msg}");
        assert!(msg.contains("n7"), "msg: {msg}");
        assert!(msg.contains("n12"), "msg: {msg}");
        // The diagnostic embeds the offending request set.
        assert!(msg.contains("vc3"), "msg: {msg}");
    }
}
