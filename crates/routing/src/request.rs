//! Virtual-channel requests — the output of a routing decision.
//!
//! The Footprint paper's Algorithm 1 does not return a single `(port, vc)`
//! pair; it emits a *prioritized set of VC requests* (`ADD(P, v, pri)`),
//! which the router's priority-based VC allocator then arbitrates. This
//! module defines that vocabulary, shared by all routing algorithms: the
//! baselines simply emit uniform-priority request sets.

use core::fmt;
use footprint_topology::Port;

/// A virtual-channel index within a physical channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(pub u8);

impl VcId {
    /// The escape virtual channel used by Duato-based algorithms (DBAR,
    /// Footprint). Always VC 0 in this implementation.
    pub const ESCAPE: VcId = VcId(0);

    /// The VC index as a `usize`, for indexing per-VC tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VcId` from a `usize` loop index — the checked inverse of
    /// [`VcId::index`]. Configuration validation caps VC counts far below
    /// `u8::MAX`, so the narrowing is always lossless for valid configs;
    /// this constructor `debug_assert!`s that instead of silently
    /// truncating, so routing hot paths can iterate in `usize` without
    /// scattering bare `as u8` casts.
    #[inline]
    pub fn from_index(v: usize) -> Self {
        debug_assert!(
            v <= u8::MAX as usize,
            "VC index {v} exceeds the u8 wire representation"
        );
        VcId(v as u8)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

impl From<u8> for VcId {
    fn from(v: u8) -> Self {
        VcId(v)
    }
}

/// Request priority, ordered from `Lowest` to `Highest`.
///
/// Algorithm 1 uses exactly these four levels:
/// * `Highest` — idle VCs under moderate load (line 40),
/// * `High` — footprint VCs (lines 34/41) and escape continuation,
/// * `Low` — ordinary adaptive VCs (lines 31/37/42),
/// * `Lowest` — the escape channel (line 45).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Escape-channel fallback.
    Lowest = 0,
    /// Ordinary adaptive VCs.
    Low = 1,
    /// Footprint VCs / escape continuation.
    High = 2,
    /// Idle VCs under moderate load.
    Highest = 3,
}

impl Priority {
    /// All priorities from `Highest` down to `Lowest` — the order in which a
    /// priority-based VC allocator considers requests.
    pub const DESCENDING: [Priority; 4] = [
        Priority::Highest,
        Priority::High,
        Priority::Low,
        Priority::Lowest,
    ];
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Lowest => "lowest",
            Priority::Low => "low",
            Priority::High => "high",
            Priority::Highest => "highest",
        };
        f.write_str(s)
    }
}

/// A single VC request: "grant me VC `vc` at output port `port`", with an
/// arbitration priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcRequest {
    /// Requested output port.
    pub port: Port,
    /// Requested VC on that port.
    pub vc: VcId,
    /// Arbitration priority.
    pub priority: Priority,
}

impl VcRequest {
    /// Convenience constructor.
    #[inline]
    pub fn new(port: Port, vc: VcId, priority: Priority) -> Self {
        VcRequest { port, vc, priority }
    }
}

impl fmt::Display for VcRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.port, self.vc, self.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Direction;

    #[test]
    fn priority_ordering_matches_algorithm_1() {
        assert!(Priority::Highest > Priority::High);
        assert!(Priority::High > Priority::Low);
        assert!(Priority::Low > Priority::Lowest);
    }

    #[test]
    fn descending_covers_all_levels_in_order() {
        let d = Priority::DESCENDING;
        assert_eq!(d.len(), 4);
        for w in d.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn escape_vc_is_zero() {
        assert_eq!(VcId::ESCAPE, VcId(0));
        assert_eq!(VcId::ESCAPE.index(), 0);
    }

    #[test]
    fn request_display_is_compact() {
        let r = VcRequest::new(Port::Dir(Direction::East), VcId(3), Priority::High);
        assert_eq!(r.to_string(), "E:vc3@high");
    }

    #[test]
    fn vcid_from_u8() {
        assert_eq!(VcId::from(7u8), VcId(7));
        assert_eq!(VcId(7).to_string(), "vc7");
    }
}
