//! The Footprint routing algorithm — the paper's contribution (Algorithm 1).

use crate::algorithm::{coin, eject_requests};
use crate::{Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy};
use footprint_topology::{Direction, NodeId, Port};
use rand::RngCore;

/// Footprint routing: fully adaptive, but packets "follow the footprint" of
/// prior packets to the same destination when the network is congested.
///
/// The algorithm (paper Algorithm 1) has three steps:
///
/// 1. **Legal outputs.** At most two productive ports (`P_x`, `P_y`); the
///    escape port is the dimension-order port; VC 0 of every channel is the
///    Duato escape channel.
/// 2. **Port selection.** The port with more *idle* VCs wins; ties fall to
///    the port with more *footprint* VCs (VCs already occupied by packets to
///    the same destination); remaining ties break randomly.
/// 3. **VC requests.** Congestion is estimated locally from the idle-VC
///    count against a threshold of half the VCs per channel:
///    * `idle ≥ V/2` (no congestion): request all adaptive VCs, `Low`.
///    * `idle = 0` (saturated): request only footprint VCs, `High` — or all
///      adaptive VCs at `Low` if no footprint exists.
///    * otherwise: idle VCs at `Highest`, footprint VCs at `High`, busy VCs
///      at `Low`.
///
///    The escape channel is always requested at `Lowest` priority.
///
/// Footprint VCs are claimed through *standing requests*: a packet waiting
/// on a footprint channel is granted the VC the instant it fully drains,
/// so same-destination packets serialize through the same VC chain — the
/// dynamic virtual set-aside queues of §3.3 that keep the congestion tree
/// slim — while honouring the atomic VC reallocation that Duato-based
/// algorithms require (§4.2.1).
///
/// [`Footprint::with_join`] additionally lets a packet *join* a footprint
/// VC before it has fully drained (stacking packets in one VC FIFO). This
/// is an extension beyond the paper's BookSim implementation; our ablation
/// bench shows unbounded joins destabilize permutation traffic at high
/// load, which is why the default is off.
///
/// The congestion threshold is configurable ([`Footprint::with_threshold`])
/// for ablation studies; [`Footprint::new`] uses the paper's `V/2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Idle-VC count at or above which the network is considered
    /// uncongested. `None` = the paper's default of `V/2`.
    threshold: Option<usize>,
    /// Upper bound on the number of footprint VCs requested per port.
    /// `None` = unlimited (the paper's configuration; §4.2.5 discusses
    /// limiting it as future work, which this knob enables).
    max_footprint_vcs: Option<usize>,
    /// Allow joining a draining footprint VC before it has fully emptied.
    join: bool,
    /// Use Algorithm 1's literal priority labels in the intermediate-load
    /// tier (idle above footprint). See `with_literal_tiering`.
    literal_tiering: bool,
}

impl Footprint {
    /// Footprint with the paper's configuration: threshold `V/2`, unlimited
    /// footprint VCs, strict atomic VC reallocation.
    pub fn new() -> Self {
        Footprint {
            threshold: None,
            max_footprint_vcs: None,
            join: false,
            literal_tiering: false,
        }
    }

    /// Overrides the congestion threshold (number of idle VCs at or above
    /// which the network is treated as uncongested).
    pub fn with_threshold(threshold: usize) -> Self {
        Footprint {
            threshold: Some(threshold),
            ..Self::new()
        }
    }

    /// Enables footprint *joins*: a packet may be granted a footprint VC
    /// that is still draining, stacking same-destination packets in one VC
    /// FIFO. Extension knob (off by default — see the type-level docs).
    pub fn with_join(mut self) -> Self {
        self.join = true;
        self
    }

    /// Bounds the number of footprint VCs a packet may request per port —
    /// the future-work isolation knob of §4.2.5.
    pub fn with_max_footprint_vcs(mut self, max: usize) -> Self {
        self.max_footprint_vcs = Some(max);
        self
    }

    /// Uses Algorithm 1's literal priority labels at intermediate load
    /// (idle `Highest` > footprint `High`), instead of the default
    /// behaviour-matched tiering in which a packet whose footprint
    /// *dominates* the idle pool follows it rather than forking a new VC.
    ///
    /// The paper's prose is explicit that congested packets follow prior
    /// packets "instead of forking a new path or VC"; taken literally, the
    /// listing's `Highest` on idle VCs makes congested flows keep expanding
    /// into every idle VC, which defeats the slim-tree goal (our ablation
    /// bench quantifies the difference). The default therefore puts a
    /// packet's footprint VCs first when they are at least as numerous as
    /// the idle VCs — the local signature of endpoint congestion — and
    /// falls back to the listing's idle-first order otherwise; this knob
    /// restores the literal listing unconditionally, for comparison.
    pub fn with_literal_tiering(mut self) -> Self {
        self.literal_tiering = true;
        self
    }

    fn threshold_for(&self, num_vcs: usize) -> usize {
        self.threshold.unwrap_or(num_vcs / 2)
    }

    /// Step 3 of Algorithm 1: generates the prioritized VC requests for the
    /// chosen port from its packed class masks ([`class_masks`]). Emission
    /// is class-grouped (idle block, then footprint, then busy — matching
    /// the listing) by ascending bit iteration; no intermediate lists and
    /// no further port scans.
    fn add_vc_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        port: Port,
        masks: ClassMasks,
        out: &mut Vec<VcRequest>,
    ) {
        let fp_limit = self.max_footprint_vcs.unwrap_or(usize::MAX);
        let idle = masks.idle_count();
        // Footprint VCs beyond the §4.2.5 limit get no request at all.
        let fp = masks.footprint_count().min(fp_limit);
        let threshold = self.threshold_for(ctx.num_vcs);
        let push = |class, priority, limit, out: &mut Vec<VcRequest>| {
            push_mask_class(port, masks, class, priority, limit, out);
        };
        if idle >= threshold {
            // No congestion: use all adaptive VCs — waiting on footprint
            // channels would only add latency (line 31).
            push(VcClass::Idle, Priority::Low, usize::MAX, out);
            push(VcClass::Footprint, Priority::Low, fp_limit, out);
            push(VcClass::Busy, Priority::Low, usize::MAX, out);
        } else if idle == 0 {
            if fp > 0 {
                // Saturated with a footprint: wait on the footprint channels
                // only (line 34).
                push(VcClass::Footprint, Priority::High, fp_limit, out);
            } else {
                // Saturated, no footprint: request all adaptive VCs (line 37).
                push(VcClass::Busy, Priority::Low, usize::MAX, out);
            }
        } else if self.literal_tiering || fp == 0 {
            // Intermediate load, no footprint (or literal mode): prioritize
            // idle > footprint > busy (lines 40-42 as listed).
            push(VcClass::Idle, Priority::Highest, usize::MAX, out);
            push(VcClass::Footprint, Priority::High, fp_limit, out);
            push(VcClass::Busy, Priority::Low, usize::MAX, out);
        } else if fp >= idle {
            // Intermediate load with a *dominant* footprint — the signature
            // of endpoint congestion (this destination already occupies as
            // many VCs as remain idle): follow the footprint instead of
            // forking a new VC (the behaviour the paper's §1/§3.2 prose
            // specifies). Idle VCs stay requested as a lower-priority
            // fallback so forward progress never depends on the footprint
            // chain alone.
            push(VcClass::Footprint, Priority::Highest, fp_limit, out);
            push(VcClass::Idle, Priority::High, usize::MAX, out);
            push(VcClass::Busy, Priority::Low, usize::MAX, out);
        } else {
            // Intermediate load, footprint present but small relative to
            // the idle pool (transient contention, not endpoint
            // congestion): the listing's tiering — idle first, then
            // footprint, then busy (lines 40-42).
            push(VcClass::Idle, Priority::Highest, usize::MAX, out);
            push(VcClass::Footprint, Priority::High, fp_limit, out);
            push(VcClass::Busy, Priority::Low, usize::MAX, out);
        }
    }
}

// The VC classification itself lives with the views ([`crate::VcClass`],
// [`crate::VcView::class_for`]); these wrappers bind it to a routing
// context. Each port is scanned exactly once through the *bulk*
// `PortStateView::class_masks` call — one virtual dispatch per port, no
// per-VC vtable hops — and both the class counts (port selection) and the
// per-class request emission (step 3) are derived from the packed masks.
pub(crate) use crate::VcClass;

/// One port's VC classification for a destination, packed as bitmasks over
/// the adaptive index range `[lo, num_vcs)`. Busy VCs are the range bits
/// not in either mask.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassMasks {
    idle: u64,
    fp: u64,
    /// All bits of the scanned `[lo, num_vcs)` range.
    range: u64,
}

impl ClassMasks {
    pub(crate) fn idle_count(self) -> usize {
        self.idle.count_ones() as usize
    }

    pub(crate) fn footprint_count(self) -> usize {
        self.fp.count_ones() as usize
    }

    fn of(self, class: VcClass) -> u64 {
        match class {
            VcClass::Idle => self.idle,
            VcClass::Footprint => self.fp,
            VcClass::Busy => self.range & !self.idle & !self.fp,
        }
    }
}

/// Classifies the VCs of `port` in index range `[lo, num_vcs)` for
/// destination `dest` in a single bulk scan. Allocation-free; `route`
/// runs per packet per cycle.
pub(crate) fn class_masks(
    ctx: &RoutingCtx<'_>,
    port: Port,
    dest: NodeId,
    lo: usize,
) -> ClassMasks {
    let hi = ctx.num_vcs;
    let (idle, fp) = ctx.ports.class_masks(port, dest, lo, hi);
    let range = if hi >= 64 { !0u64 } else { (1u64 << hi) - 1 } & !((1u64 << lo) - 1);
    ClassMasks { idle, fp, range }
}

/// Pushes a request for every VC of `class` in `masks` (in ascending
/// VC-index order — the order grant arbitration depends on — at most
/// `limit` of them) with priority `priority`.
pub(crate) fn push_mask_class(
    port: Port,
    masks: ClassMasks,
    class: VcClass,
    priority: Priority,
    limit: usize,
    out: &mut Vec<VcRequest>,
) {
    let mut bits = masks.of(class);
    let mut emitted = 0;
    while bits != 0 && emitted < limit {
        let v = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        out.push(VcRequest::new(port, VcId::from_index(v), priority));
        emitted += 1;
    }
}

impl Default for Footprint {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingAlgorithm for Footprint {
    fn name(&self) -> &'static str {
        "footprint"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        true
    }

    fn allows_footprint_join(&self) -> bool {
        self.join
    }

    fn vc_selection(&self) -> crate::VcSelection {
        crate::VcSelection::Adaptive
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        // Packets arriving on the escape VC re-enter the adaptive channels
        // (Duato's theory permits this as long as the escape sub-network is
        // always requested; line 45 below guarantees that).
        // STEP 1: legal output ports. Faulted or dead-end channels drop
        // out of the candidate set before selection; the coin is only
        // consumed on a genuine two-way tie, so fault-free runs draw the
        // same RNG sequence as before the fault subsystem existed.
        let dirs = ctx.topo.minimal_dirs(ctx.current, ctx.dest);
        if dirs.count() == 0 {
            return eject_requests(ctx, out);
        }
        let px: Option<Direction> = dirs.x.filter(|&d| ctx.usable(d));
        let py: Option<Direction> = dirs.y.filter(|&d| ctx.usable(d));
        let (chosen, masks) = match (px, py) {
            // Both productive channels masked: nothing usable to request
            // (the escape shares those channels and is masked with them).
            (None, None) => return,
            (Some(d), None) | (None, Some(d)) => {
                (d, class_masks(ctx, Port::Dir(d), ctx.dest, ctx.adaptive_lo(true)))
            }
            (Some(x), Some(y)) => {
                // STEP 2: compare idle-VC counts, then footprint-VC counts,
                // then break ties randomly (lines 10–20). Each port is
                // scanned once; the winner's masks feed step 3 directly.
                let lo = ctx.adaptive_lo(true);
                let mx = class_masks(ctx, Port::Dir(x), ctx.dest, lo);
                let my = class_masks(ctx, Port::Dir(y), ctx.dest, lo);
                let x_wins = match mx.idle_count().cmp(&my.idle_count()) {
                    core::cmp::Ordering::Greater => true,
                    core::cmp::Ordering::Less => false,
                    core::cmp::Ordering::Equal => {
                        match mx.footprint_count().cmp(&my.footprint_count()) {
                            core::cmp::Ordering::Greater => true,
                            core::cmp::Ordering::Less => false,
                            core::cmp::Ordering::Equal => coin(rng),
                        }
                    }
                };
                if x_wins {
                    (x, mx)
                } else {
                    (y, my)
                }
            }
        };
        // STEP 3: VC requests on the chosen port.
        self.add_vc_requests(ctx, Port::Dir(chosen), masks, out);
        // Escape request, always at lowest priority (line 45); on wrapping
        // topologies the dateline rule picks the escape class.
        ctx.push_escape_request(out);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        // Injection selects a VC on the source→router channel; run step 3
        // against the local port so footprints form from the very first hop.
        let lo = ctx.adaptive_lo(true);
        let masks = class_masks(ctx, Port::Local, ctx.dest, lo);
        self.add_vc_requests(ctx, Port::Local, masks, out);
        // Every escape class stays requestable at injection.
        for v in 0..lo {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Lowest));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoCongestionInfo, TablePortView, VcView};
    use footprint_topology::Mesh;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const V: usize = 4; // 1 escape + 3 adaptive

    fn busy_vc(owner: u16) -> VcView {
        VcView {
            idle: false,
            owner: Some(NodeId(owner)),
            credits: 2,
            joinable: true,
        }
    }

    fn mk_ctx<'a>(view: &'a TablePortView, cong: &'a NoCongestionInfo) -> RoutingCtx<'a> {
        RoutingCtx {
            topo: Mesh::square(8).into(),
            current: NodeId(0),
            src: NodeId(0),
            dest: NodeId(63),
            input_port: Port::Local,
            input_vc: VcId(1),
            on_escape: false,
            num_vcs: V,
            ports: view,
            congestion: cong,
            links: &crate::AllLinksUp,
        }
    }

    #[test]
    fn faulted_port_is_excluded_from_selection() {
        use crate::DownLinks;
        let view = TablePortView::all_idle(V, 4);
        let cong = NoCongestionInfo;
        let faults = DownLinks::new(vec![(NodeId(0), Direction::East)]);
        let mut ctx = mk_ctx(&view, &cong);
        ctx.links = &faults;
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            Footprint::new().route(&ctx, &mut rng, &mut out);
            assert!(!out.is_empty(), "seed {seed}");
            assert!(
                out.iter().all(|r| r.port == Port::Dir(Direction::North)),
                "seed {seed}: {out:?}"
            );
        }
    }

    fn route(view: &TablePortView) -> Vec<VcRequest> {
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(view, &cong);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::new().route(&ctx, &mut rng, &mut out);
        out
    }

    #[test]
    fn uncongested_requests_all_adaptive_vcs_low() {
        let view = TablePortView::all_idle(V, 4);
        let out = route(&view);
        // One chosen direction with 3 adaptive requests + escape.
        let adaptive: Vec<_> = out.iter().filter(|r| r.vc != VcId::ESCAPE).collect();
        assert_eq!(adaptive.len(), 3);
        assert!(adaptive.iter().all(|r| r.priority == Priority::Low));
        let esc = crate::invariant::escape_request(&out, NodeId(0), NodeId(63)).unwrap();
        assert_eq!(esc.priority, Priority::Lowest);
    }

    #[test]
    fn port_selection_prefers_more_idle_vcs() {
        let mut view = TablePortView::all_idle(V, 4);
        // East has 1 idle adaptive VC, North has 3.
        view.set(Port::Dir(Direction::East), VcId(1), busy_vc(5));
        view.set(Port::Dir(Direction::East), VcId(2), busy_vc(6));
        let out = route(&view);
        assert!(out
            .iter()
            .filter(|r| r.vc != VcId::ESCAPE)
            .all(|r| r.port == Port::Dir(Direction::North)));
    }

    #[test]
    fn port_tie_broken_by_footprint_vcs() {
        let mut view = TablePortView::all_idle(V, 4);
        // Both ports have 2 idle adaptive VCs, but East's busy VC carries
        // traffic to our destination (63) — a footprint.
        view.set(Port::Dir(Direction::East), VcId(1), busy_vc(63));
        view.set(Port::Dir(Direction::North), VcId(1), busy_vc(5));
        let out = route(&view);
        assert!(out
            .iter()
            .filter(|r| r.vc != VcId::ESCAPE)
            .all(|r| r.port == Port::Dir(Direction::East)));
    }

    #[test]
    fn saturated_port_with_footprint_requests_only_footprint_high() {
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(1), busy_vc(63));
            view.set(port, VcId(2), busy_vc(5));
            view.set(port, VcId(3), busy_vc(6));
        }
        let out = route(&view);
        let adaptive: Vec<_> = out.iter().filter(|r| r.vc != VcId::ESCAPE).collect();
        assert_eq!(adaptive.len(), 1);
        assert_eq!(adaptive[0].vc, VcId(1));
        assert_eq!(adaptive[0].priority, Priority::High);
    }

    #[test]
    fn saturated_port_without_footprint_requests_all_adaptive() {
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            for v in 1..V {
                view.set(port, VcId::from_index(v), busy_vc(5));
            }
        }
        let out = route(&view);
        let adaptive: Vec<_> = out.iter().filter(|r| r.vc != VcId::ESCAPE).collect();
        assert_eq!(adaptive.len(), 3);
        assert!(adaptive.iter().all(|r| r.priority == Priority::Low));
    }

    #[test]
    fn intermediate_load_uses_three_priority_tiers() {
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(1), busy_vc(63)); // footprint
            view.set(port, VcId(2), busy_vc(5)); // busy, other dest
                                                 // VcId(3) stays idle → 1 idle < threshold (V/2 = 2), not 0.
        }
        let out = route(&view);
        let by_vc = |vc: u8| {
            out.iter()
                .find(|r| r.vc == VcId(vc) && r.port != Port::Local)
                .unwrap()
                .priority
        };
        // Behaviour-matched tiering: the packet follows its footprint
        // instead of forking into the idle VC.
        assert_eq!(by_vc(1), Priority::Highest); // footprint
        assert_eq!(by_vc(3), Priority::High); // idle
        assert_eq!(by_vc(2), Priority::Low); // busy
        assert_eq!(by_vc(0), Priority::Lowest); // escape
    }

    #[test]
    fn literal_tiering_restores_algorithm_1_labels() {
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(1), busy_vc(63)); // footprint
            view.set(port, VcId(2), busy_vc(5)); // busy, other dest
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::new()
            .with_literal_tiering()
            .route(&ctx, &mut rng, &mut out);
        let by_vc = |vc: u8| {
            out.iter()
                .find(|r| r.vc == VcId(vc) && r.port != Port::Local)
                .unwrap()
                .priority
        };
        assert_eq!(by_vc(3), Priority::Highest); // idle (lines 40-42 literal)
        assert_eq!(by_vc(1), Priority::High); // footprint
        assert_eq!(by_vc(2), Priority::Low); // busy
    }

    #[test]
    fn footprint_join_capability_is_declared() {
        let f = Footprint::new();
        assert!(!f.allows_footprint_join(), "strict atomic by default");
        assert!(f.with_join().allows_footprint_join());
        assert_eq!(f.policy(), VcReallocationPolicy::Atomic);
        assert!(f.has_escape());
        assert_eq!(f.name(), "footprint");
    }

    #[test]
    fn max_footprint_vcs_limits_requests() {
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            for v in 1..V {
                view.set(port, VcId::from_index(v), busy_vc(63)); // all footprints
            }
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::new()
            .with_max_footprint_vcs(1)
            .route(&ctx, &mut rng, &mut out);
        let fp: Vec<_> = out
            .iter()
            .filter(|r| r.priority == Priority::High)
            .collect();
        assert_eq!(fp.len(), 1);
    }

    #[test]
    fn custom_threshold_changes_congestion_estimate() {
        // With threshold 1, a port with a single idle VC is "uncongested"
        // and everything is requested at Low.
        let mut view = TablePortView::all_idle(V, 4);
        for port in [Port::Dir(Direction::East), Port::Dir(Direction::North)] {
            view.set(port, VcId(1), busy_vc(63));
            view.set(port, VcId(2), busy_vc(5));
        }
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::with_threshold(1).route(&ctx, &mut rng, &mut out);
        assert!(out
            .iter()
            .filter(|r| r.vc != VcId::ESCAPE)
            .all(|r| r.priority == Priority::Low));
    }

    #[test]
    fn injection_builds_footprints_at_source() {
        let mut view = TablePortView::all_idle(V, 4);
        view.set(Port::Local, VcId(1), busy_vc(63)); // footprint at injection
        view.set(Port::Local, VcId(2), busy_vc(5));
        let cong = NoCongestionInfo;
        let ctx = mk_ctx(&view, &cong);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::new().injection_requests(&ctx, &mut rng, &mut out);
        assert!(out.iter().all(|r| r.port == Port::Local));
        let fp = out.iter().find(|r| r.vc == VcId(1)).unwrap();
        assert_eq!(fp.priority, Priority::Highest, "footprints lead at injection too");
    }

    #[test]
    fn ejects_at_destination_router() {
        let view = TablePortView::all_idle(V, 4);
        let cong = NoCongestionInfo;
        let mut ctx = mk_ctx(&view, &cong);
        ctx.current = ctx.dest;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = Vec::new();
        Footprint::new().route(&ctx, &mut rng, &mut out);
        assert!(out.iter().all(|r| r.port == Port::Local));
        assert_eq!(out.len(), V);
    }
}
