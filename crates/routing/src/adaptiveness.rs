//! Two-level routing adaptiveness metrics (paper §3.1).
//!
//! The paper expands the classic definition of routing adaptiveness (allowed
//! minimal paths / total minimal paths, Glass & Ni) into two levels:
//!
//! * **Port adaptiveness** (`P_adapt`, Eq. 1) — diversity of physical paths.
//! * **VC adaptiveness** (`VC_adapt`, Eq. 2/3) — diversity of virtual
//!   channels usable on each physical channel, which traditional algorithms
//!   ignore (their VC adaptiveness is 0 by the paper's convention).
//!
//! These functions quantify Table 1's qualitative rows for our concrete
//! implementations.

use crate::{RoutingAlgorithm, VcSelection};
use footprint_topology::{AnyTopology, NodeId};

/// Counts the minimal paths from `src` to `dest` that the algorithm's
/// state-independent allowed-direction relation permits.
///
/// Uses memoized counting over the (acyclic) minimal quadrant, so it is
/// exact even for 16×16 meshes where path counts explode combinatorially.
pub fn allowed_path_count(
    topo: impl Into<AnyTopology>,
    algo: &dyn RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
) -> u64 {
    fn rec(
        topo: AnyTopology,
        algo: &dyn RoutingAlgorithm,
        cur: NodeId,
        src: NodeId,
        dest: NodeId,
        memo: &mut [Option<u64>],
    ) -> u64 {
        if cur == dest {
            return 1;
        }
        if let Some(v) = memo[cur.index()] {
            return v;
        }
        let mut total = 0u64;
        for d in algo.allowed_dirs(topo, cur, src, dest).iter() {
            // Allowed directions are minimal by construction, so this walk
            // terminates; a direction off the fabric is a corrupted
            // direction set — report it and skip rather than abort the
            // analysis.
            let next = match crate::invariant::neighbor_checked(topo, cur, d) {
                Ok(n) => n,
                Err(e) => {
                    crate::invariant::report_violation(&e);
                    continue;
                }
            };
            total = total.saturating_add(rec(topo, algo, next, src, dest, memo));
        }
        memo[cur.index()] = Some(total);
        total
    }
    let topo = topo.into();
    let mut memo = vec![None; topo.len()];
    rec(topo, algo, src, src, dest, &mut memo)
}

/// Path-level port adaptiveness for one pair: allowed minimal paths divided
/// by all minimal paths. 1.0 for fully adaptive algorithms, `1/C(dx+dy,dx)`
/// for deterministic ones.
pub fn path_adaptiveness(
    topo: impl Into<AnyTopology>,
    algo: &dyn RoutingAlgorithm,
    src: NodeId,
    dest: NodeId,
) -> f64 {
    let topo = topo.into();
    let total = topo.minimal_path_count(src, dest);
    if total == 0 {
        return 1.0;
    }
    allowed_path_count(topo, algo, src, dest) as f64 / total as f64
}

/// Mean path adaptiveness over all ordered pairs `src != dest`.
///
/// This is the network-wide scalar quoted in comparisons like Table 1:
/// 1.0 for DBAR/Footprint, strictly between 0 and 1 for Odd-Even, and small
/// for DOR.
pub fn mean_path_adaptiveness(topo: impl Into<AnyTopology>, algo: &dyn RoutingAlgorithm) -> f64 {
    let topo = topo.into();
    let mut sum = 0.0;
    let mut pairs = 0u64;
    for src in topo.nodes() {
        for dest in topo.nodes() {
            if src != dest {
                sum += path_adaptiveness(topo, algo, src, dest);
                pairs += 1;
            }
        }
    }
    sum / pairs as f64
}

/// Port adaptiveness per the paper's Eq. (1) at a single decision point:
/// adaptive output ports over minimal output ports at `cur` for `src→dest`.
pub fn port_adaptiveness_at(
    topo: impl Into<AnyTopology>,
    algo: &dyn RoutingAlgorithm,
    cur: NodeId,
    src: NodeId,
    dest: NodeId,
) -> f64 {
    let topo = topo.into();
    let minimal = topo.minimal_dirs(cur, dest).count();
    if minimal == 0 {
        return 1.0;
    }
    algo.allowed_dirs(topo, cur, src, dest).len() as f64 / minimal as f64
}

/// VC adaptiveness per the paper's Eq. (2)/(3).
///
/// Returns `None` when the metric is not applicable (static VC mappings like
/// XORDET, per Table 1's footnote). Algorithms that select VCs obliviously
/// get 0 by the paper's convention. Duato-based VC-aware algorithms
/// (Footprint) get Eq. (3): 1 on the escape channel and `(V-1)/V` on
/// adaptive channels.
pub fn vc_adaptiveness(
    algo: &dyn RoutingAlgorithm,
    num_vcs: usize,
    escape_channel: bool,
) -> Option<f64> {
    match algo.vc_selection() {
        VcSelection::StaticMapped => None,
        VcSelection::Oblivious => Some(0.0),
        VcSelection::Adaptive => Some(if escape_channel {
            1.0
        } else {
            (num_vcs as f64 - 1.0) / num_vcs as f64
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dbar, Dor, Footprint, OddEven, Xordet};
    use footprint_topology::Mesh;

    #[test]
    fn dor_allows_exactly_one_path() {
        let mesh = Mesh::square(8);
        assert_eq!(allowed_path_count(mesh, &Dor, NodeId(0), NodeId(63)), 1);
        let p = path_adaptiveness(mesh, &Dor, NodeId(0), NodeId(63));
        assert!(p > 0.0 && p < 1e-3, "DOR path adaptiveness tiny, got {p}");
    }

    #[test]
    fn fully_adaptive_algorithms_allow_all_paths() {
        let mesh = Mesh::square(8);
        for (name, algo) in [
            ("dbar", &Dbar as &dyn RoutingAlgorithm),
            ("footprint", &Footprint::new()),
        ] {
            for (s, d) in [(0u16, 63u16), (5, 40), (17, 3)] {
                let p = path_adaptiveness(mesh, algo, NodeId(s), NodeId(d));
                assert!((p - 1.0).abs() < 1e-12, "{name} {s}->{d} got {p}");
            }
        }
    }

    #[test]
    fn odd_even_is_partially_adaptive() {
        let mesh = Mesh::square(8);
        let mean = mean_path_adaptiveness(mesh, &OddEven);
        assert!(mean > 0.0 && mean < 1.0, "odd-even mean {mean}");
        let dor_mean = mean_path_adaptiveness(mesh, &Dor);
        let full_mean = mean_path_adaptiveness(mesh, &Dbar);
        assert!(dor_mean < mean && mean < full_mean + 1e-12);
        assert!((full_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_even_allows_at_least_one_path_everywhere() {
        let mesh = Mesh::square(8);
        for src in mesh.nodes() {
            for dest in mesh.nodes() {
                if src != dest {
                    assert!(
                        allowed_path_count(mesh, &OddEven, src, dest) >= 1,
                        "{src}->{dest} disconnected"
                    );
                }
            }
        }
    }

    #[test]
    fn port_adaptiveness_at_decision_points() {
        let mesh = Mesh::square(8);
        // DOR at an interior point with both dims productive: 1 of 2 ports.
        let p = port_adaptiveness_at(mesh, &Dor, NodeId(0), NodeId(0), NodeId(63));
        assert!((p - 0.5).abs() < 1e-12);
        // Fully adaptive: 2 of 2.
        let p = port_adaptiveness_at(mesh, &Footprint::new(), NodeId(0), NodeId(0), NodeId(63));
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vc_adaptiveness_matches_eq3() {
        let fp = Footprint::new();
        assert_eq!(vc_adaptiveness(&fp, 10, true), Some(1.0));
        assert_eq!(vc_adaptiveness(&fp, 10, false), Some(0.9));
        assert_eq!(vc_adaptiveness(&Dbar, 10, false), Some(0.0));
        assert_eq!(vc_adaptiveness(&Dor, 10, false), Some(0.0));
        let x = Xordet::new(Dor, "dor+xordet");
        assert_eq!(vc_adaptiveness(&x, 10, false), None);
    }
}
