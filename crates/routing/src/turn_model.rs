//! Classic turn-model routing algorithms (Glass & Ni, ISCA 1992):
//! West-First and North-Last.
//!
//! Not evaluated in the Footprint paper, but standard reference points for
//! partially adaptive routing on meshes — useful for extending the
//! comparison and for validating the adaptiveness metrics (their
//! adaptiveness is asymmetric by construction: fully adaptive for some
//! quadrants, deterministic for others).

use crate::algorithm::{coin, eject_requests, DirSet};
use crate::{Priority, RoutingAlgorithm, RoutingCtx, VcId, VcRequest, VcReallocationPolicy};
use footprint_topology::{AnyTopology, Direction, NodeId, Port};
use rand::RngCore;

/// Selects among up to two allowed directions by idle-VC count with a
/// random tie-break, then requests every VC on the chosen port (the
/// selection rule the paper uses for Odd-Even).
fn select_and_request(
    ctx: &RoutingCtx<'_>,
    legal: DirSet,
    rng: &mut dyn RngCore,
    out: &mut Vec<VcRequest>,
) {
    if ctx.current == ctx.dest {
        return eject_requests(ctx, out);
    }
    // Faulted candidates drop out of the turn-model set; the coin is only
    // consumed on a genuine two-way tie (fault-free RNG sequence intact).
    let mut it = legal.iter().filter(|&d| ctx.usable(d));
    let dir = match (it.next(), it.next()) {
        // Every legal direction is masked: stand down and wait.
        (None, _) => return,
        (Some(d), None) => d,
        (Some(a), Some(b)) => {
            let ia = ctx.ports.idle_count(Port::Dir(a), 0, ctx.num_vcs);
            let ib = ctx.ports.idle_count(Port::Dir(b), 0, ctx.num_vcs);
            match ia.cmp(&ib) {
                core::cmp::Ordering::Greater => a,
                core::cmp::Ordering::Less => b,
                core::cmp::Ordering::Equal => {
                    if coin(rng) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    };
    for v in 0..ctx.num_vcs {
        out.push(VcRequest::new(Port::Dir(dir), VcId::from_index(v), Priority::Low));
    }
}

/// West-First turn model: all turns *into* West are banned, so any westward
/// travel must happen first. Eastbound packets are fully adaptive;
/// westbound packets are deterministic (west first, then as DOR).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WestFirst;

impl WestFirst {
    /// The minimal directions permitted by the west-first turn model. On
    /// wrapping topologies the relation lives on the acyclic
    /// (non-wraparound) channel subgraph, preserving the mesh CDG argument.
    pub fn legal_dirs(topo: impl Into<AnyTopology>, cur: NodeId, dest: NodeId) -> DirSet {
        let dirs = topo.into().acyclic_minimal_dirs(cur, dest);
        let mut set = DirSet::EMPTY;
        match dirs.x {
            // Westward travel must come first and alone.
            Some(Direction::West) => set.insert(Direction::West),
            // Eastbound (or same column): fully adaptive among productive
            // directions.
            _ => {
                for d in dirs.iter() {
                    set.insert(d);
                }
            }
        }
        set
    }
}

impl RoutingAlgorithm for WestFirst {
    fn name(&self) -> &'static str {
        "west-first"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::NonAtomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let legal = Self::legal_dirs(ctx.topo, ctx.current, ctx.dest);
        select_and_request(ctx, legal, rng, out);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Low));
        }
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, _src: NodeId, dest: NodeId) -> DirSet {
        Self::legal_dirs(topo, cur, dest)
    }
}

/// North-Last turn model: all turns *out of* North are banned, so any
/// northward travel must happen last. Southbound packets are fully
/// adaptive; northbound packets finish deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NorthLast;

impl NorthLast {
    /// The minimal directions permitted by the north-last turn model. On
    /// wrapping topologies the relation lives on the acyclic
    /// (non-wraparound) channel subgraph, preserving the mesh CDG argument.
    pub fn legal_dirs(topo: impl Into<AnyTopology>, cur: NodeId, dest: NodeId) -> DirSet {
        let dirs = topo.into().acyclic_minimal_dirs(cur, dest);
        let mut set = DirSet::EMPTY;
        match (dirs.x, dirs.y) {
            // Northward travel is only allowed once no other productive
            // direction remains.
            (None, Some(Direction::North)) => set.insert(Direction::North),
            (Some(x), Some(Direction::North)) => set.insert(x),
            // No northward component: fully adaptive.
            _ => {
                for d in dirs.iter() {
                    set.insert(d);
                }
            }
        }
        set
    }
}

impl RoutingAlgorithm for NorthLast {
    fn name(&self) -> &'static str {
        "north-last"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::NonAtomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, ctx: &RoutingCtx<'_>, rng: &mut dyn RngCore, out: &mut Vec<VcRequest>) {
        let legal = Self::legal_dirs(ctx.topo, ctx.current, ctx.dest);
        select_and_request(ctx, legal, rng, out);
    }

    fn injection_requests(
        &self,
        ctx: &RoutingCtx<'_>,
        _rng: &mut dyn RngCore,
        out: &mut Vec<VcRequest>,
    ) {
        for v in 0..ctx.num_vcs {
            out.push(VcRequest::new(Port::Local, VcId::from_index(v), Priority::Low));
        }
    }

    fn allowed_dirs(&self, topo: AnyTopology, cur: NodeId, _src: NodeId, dest: NodeId) -> DirSet {
        Self::legal_dirs(topo, cur, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use footprint_topology::Mesh;

    #[test]
    fn west_first_goes_west_alone() {
        let mesh = Mesh::square(8);
        // (5,5) → (2,2): westward component → only West.
        let d = WestFirst::legal_dirs(mesh, NodeId(5 + 5 * 8), NodeId(2 + 2 * 8));
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::West));
    }

    #[test]
    fn west_first_is_adaptive_eastbound() {
        let mesh = Mesh::square(8);
        // (0,0) → (3,3): both East and North allowed.
        let d = WestFirst::legal_dirs(mesh, NodeId(0), NodeId(3 + 3 * 8));
        assert_eq!(d.len(), 2);
        assert!(d.contains(Direction::East));
        assert!(d.contains(Direction::North));
    }

    #[test]
    fn west_first_same_column_moves_vertically() {
        let mesh = Mesh::square(8);
        let d = WestFirst::legal_dirs(mesh, NodeId(2), NodeId(2 + 3 * 8));
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::North));
    }

    #[test]
    fn west_first_never_turns_into_west() {
        // Once a packet has moved any non-West direction, its remaining
        // legal sets must never contain West: equivalently, the legal set
        // contains West only as a singleton.
        let mesh = Mesh::square(6);
        for cur in mesh.nodes() {
            for dest in mesh.nodes() {
                let d = WestFirst::legal_dirs(mesh, cur, dest);
                if d.contains(Direction::West) {
                    assert_eq!(d.len(), 1, "West must be exclusive at {cur}→{dest}");
                }
            }
        }
    }

    #[test]
    fn north_last_goes_north_alone_and_last() {
        let mesh = Mesh::square(8);
        // Northward + eastward: East only (north deferred).
        let d = NorthLast::legal_dirs(mesh, NodeId(0), NodeId(3 + 3 * 8));
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::East));
        // Same column north: North allowed (it is last).
        let d = NorthLast::legal_dirs(mesh, NodeId(3), NodeId(3 + 3 * 8));
        assert_eq!(d.len(), 1);
        assert!(d.contains(Direction::North));
    }

    #[test]
    fn north_last_is_adaptive_southbound() {
        let mesh = Mesh::square(8);
        // (3,3) → (0,0): West + South.
        let d = NorthLast::legal_dirs(mesh, NodeId(3 + 3 * 8), NodeId(0));
        assert_eq!(d.len(), 2);
        assert!(d.contains(Direction::West));
        assert!(d.contains(Direction::South));
    }

    #[test]
    fn both_models_connect_all_pairs() {
        let mesh = Mesh::square(5);
        for (name, legal) in [
            (
                "west-first",
                WestFirst::legal_dirs as fn(Mesh, NodeId, NodeId) -> DirSet,
            ),
            ("north-last", NorthLast::legal_dirs),
        ] {
            for src in mesh.nodes() {
                for dest in mesh.nodes() {
                    if src == dest {
                        continue;
                    }
                    let mut cur = src;
                    let mut hops = 0;
                    while cur != dest {
                        let d = legal(mesh, cur, dest)
                            .iter()
                            .next()
                            .unwrap_or_else(|| panic!("{name}: stuck at {cur} for {src}→{dest}"));
                        cur = crate::invariant::neighbor_checked(mesh, cur, d).unwrap();
                        hops += 1;
                        assert!(hops <= mesh.hops(src, dest), "{name}: non-minimal walk");
                    }
                }
            }
        }
    }

    #[test]
    fn legal_dirs_always_minimal() {
        let mesh = Mesh::square(6);
        for cur in mesh.nodes() {
            for dest in mesh.nodes() {
                let minimal = mesh.minimal_dirs(cur, dest);
                for d in WestFirst::legal_dirs(mesh, cur, dest).iter() {
                    assert!(minimal.contains(d));
                }
                for d in NorthLast::legal_dirs(mesh, cur, dest).iter() {
                    assert!(minimal.contains(d));
                }
            }
        }
    }

    #[test]
    fn adaptiveness_is_between_dor_and_full() {
        use crate::adaptiveness::mean_path_adaptiveness;
        use crate::{Dbar, Dor};
        let mesh = Mesh::square(8);
        let dor = mean_path_adaptiveness(mesh, &Dor);
        let full = mean_path_adaptiveness(mesh, &Dbar);
        for algo in [
            &WestFirst as &dyn RoutingAlgorithm,
            &NorthLast as &dyn RoutingAlgorithm,
        ] {
            let a = mean_path_adaptiveness(mesh, algo);
            assert!(a > dor && a < full, "{}: {a}", algo.name());
        }
    }
}
