//! Criterion microbenchmark for the struct-of-arrays datapath walk: one
//! simulator cycle of the paper-default 8×8 mesh at three steady-state
//! occupancy levels. The per-cycle stages (delivery, VC allocation over
//! the waiting/active bitmasks, switch traversal, wire ticks) are exactly
//! what the single-thread `perf` metric times end to end; this bench
//! isolates their cost per cycle so a regression points at the datapath
//! rather than at harness plumbing.
//!
//! Occupancy is set by injection rate and reached by warming each network
//! into steady state before timing; iterations then keep simulating from
//! that state, so every timed cycle sees a live network at the target
//! load, not a cold start.
//!
//! `FOOTPRINT_QUICK=1` shrinks the sample count to a CI-smoke footprint
//! (the CI workflow runs it that way on every push to catch build rot and
//! gross slowdowns without paying for statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use footprint_core::{RoutingSpec, SimulationBuilder, TrafficSpec};

/// `(label, injection rate)` per occupancy level: nearly-idle (the
/// active-set scheduler's home turf), moderate load, and the near-saturation
/// regime where every bitmask in the walk is dense.
const LEVELS: [(&str, f64); 3] = [("low", 0.02), ("mid", 0.15), ("high", 0.30)];

fn bench_soa_walk(c: &mut Criterion) {
    let quick = std::env::var_os("FOOTPRINT_QUICK").is_some();
    let mut g = c.benchmark_group("soa-walk-8x8");
    g.sample_size(if quick { 3 } else { 10 });
    const CYCLES: u64 = 100;
    g.throughput(Throughput::Elements(CYCLES));
    for (label, rate) in LEVELS {
        g.bench_with_input(BenchmarkId::from_parameter(label), &rate, |b, &rate| {
            let (mut net, mut wl) = SimulationBuilder::paper_default()
                .routing(RoutingSpec::Footprint)
                .traffic(TrafficSpec::UniformRandom)
                .injection_rate(rate)
                .seed(0xBE_5C)
                .build()
                .expect("static experiment config");
            net.run(&mut *wl, 1_000); // reach steady-state occupancy
            b.iter(|| net.run(&mut *wl, CYCLES));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_soa_walk);
criterion_main!(benches);
