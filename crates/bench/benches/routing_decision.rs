//! Criterion microbenchmarks: cost of a single routing decision per
//! algorithm (the per-cycle critical path of the VC allocator's phase 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use footprint_routing::{
    AllLinksUp, NoCongestionInfo, RoutingCtx, RoutingSpec, TablePortView, VcId, VcView,
};
use footprint_topology::{Mesh, NodeId, Port, DIRECTIONS};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mixed_view() -> TablePortView {
    let mut view = TablePortView::all_idle(10, 4);
    // A half-congested port state: some busy, some footprints for n63.
    for d in DIRECTIONS {
        for v in 1..6u8 {
            view.set(
                Port::Dir(d),
                VcId(v),
                VcView {
                    idle: false,
                    owner: Some(if v % 2 == 0 { NodeId(63) } else { NodeId(7) }),
                    credits: 1,
                    joinable: v % 2 == 0,
                },
            );
        }
    }
    view
}

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("route-decision");
    let view = mixed_view();
    let cong = NoCongestionInfo;
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
        RoutingSpec::DorXordet,
    ] {
        let algo = spec.build();
        g.bench_with_input(BenchmarkId::from_parameter(spec.name()), &spec, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut out = Vec::with_capacity(32);
            let ctx = RoutingCtx {
                topo: Mesh::square(8).into(),
                current: NodeId(9),
                src: NodeId(9),
                dest: NodeId(63),
                input_port: Port::Local,
                input_vc: VcId(1),
                on_escape: false,
                num_vcs: 10,
                ports: &view,
                congestion: &cong,
                links: &AllLinksUp,
            };
            b.iter(|| {
                out.clear();
                algo.route(&ctx, &mut rng, &mut out);
                std::hint::black_box(out.len())
            });
        });
    }
    g.finish();
}

/// Steady-state `route()` into one reused request buffer — the shape of
/// the VC allocator's phase-1 loop. The wrapped algorithms (footprint
/// overlay, XORDET, VOQ_sw) rewrite their inner algorithm's request tail
/// in place with fixed per-port arrays, so a regression here flags a
/// reintroduced per-call allocation on the hot path.
fn bench_route_scratch_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("route-scratch-reuse");
    let view = mixed_view();
    let cong = NoCongestionInfo;
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::OddEvenFootprint,
        RoutingSpec::DbarXordet,
        RoutingSpec::DbarVoqSw,
    ] {
        let algo = spec.build();
        g.bench_with_input(BenchmarkId::from_parameter(spec.name()), &spec, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut out = Vec::with_capacity(64);
            let ctx = RoutingCtx {
                topo: Mesh::square(8).into(),
                current: NodeId(9),
                src: NodeId(9),
                dest: NodeId(63),
                input_port: Port::Local,
                input_vc: VcId(1),
                on_escape: false,
                num_vcs: 10,
                ports: &view,
                congestion: &cong,
                links: &AllLinksUp,
            };
            // Several heads share one request buffer per cycle, exactly
            // like `Router::vc_allocate`'s scratch_reqs.
            b.iter(|| {
                out.clear();
                for _ in 0..8 {
                    algo.route(&ctx, &mut rng, &mut out);
                }
                std::hint::black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_adaptiveness(c: &mut Criterion) {
    use footprint_routing::adaptiveness::mean_path_adaptiveness;
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("mean-path-adaptiveness-8x8-odd-even", |b| {
        let algo = RoutingSpec::OddEven.build();
        let mesh = Mesh::square(8);
        b.iter(|| std::hint::black_box(mean_path_adaptiveness(mesh, &*algo)));
    });
    g.finish();
}

criterion_group!(benches, bench_route, bench_route_scratch_reuse, bench_adaptiveness);
criterion_main!(benches);
