//! Criterion microbenchmarks: simulator cycle throughput per routing
//! algorithm (how fast the substrate regenerates the paper's figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use footprint_core::{RoutingSpec, SimulationBuilder, TrafficSpec};

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-cycles-8x8");
    const CYCLES: u64 = 500;
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &spec,
            |b, &spec| {
                let (mut net, mut wl) = SimulationBuilder::paper_default()
                    .routing(spec)
                    .traffic(TrafficSpec::UniformRandom)
                    .injection_rate(0.3)
                    .seed(1)
                    .build()
                    .unwrap();
                net.run(&mut *wl, 500); // steady state
                b.iter(|| net.run(&mut *wl, CYCLES));
            },
        );
    }
    g.finish();
}

fn bench_mesh_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-cycles-mesh-size");
    const CYCLES: u64 = 200;
    g.sample_size(10);
    for k in [4u16, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{k}x{k}")), &k, |b, &k| {
            let (mut net, mut wl) = SimulationBuilder::mesh(k)
                .routing(RoutingSpec::Footprint)
                .traffic(TrafficSpec::UniformRandom)
                .injection_rate(0.3)
                .seed(1)
                .build()
                .unwrap();
            net.run(&mut *wl, 200);
            b.iter(|| net.run(&mut *wl, CYCLES));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cycles, bench_mesh_scaling);
criterion_main!(benches);
