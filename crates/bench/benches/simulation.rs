//! Criterion microbenchmarks: simulator cycle throughput per routing
//! algorithm (how fast the substrate regenerates the paper's figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use footprint_core::{RoutingSpec, SimulationBuilder, SweepOptions, TrafficSpec};

/// The quick-rates sweep of the experiment binaries, sequential vs the
/// worker pool — the end-to-end win of the parallel experiment engine
/// (and a regression guard for its per-job overhead: on one core the
/// pooled run must not be meaningfully slower than `threads = 1`).
fn bench_sweep_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep-parallel-4x4");
    g.sample_size(10);
    let rates = [0.05, 0.15, 0.25, 0.35];
    let builder = SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .warmup(200)
        .measurement(400)
        .seed(7);
    let max_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    for threads in [1usize, 2, 4] {
        if threads > 1 && threads > max_threads {
            continue; // don't pretend to measure parallelism we don't have
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let curve = builder
                        .sweep_with(&rates, SweepOptions::new().threads(threads))
                        .unwrap();
                    std::hint::black_box(curve.points.len())
                });
            },
        );
    }
    g.finish();
}

fn bench_cycles(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-cycles-8x8");
    const CYCLES: u64 = 500;
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    for spec in [
        RoutingSpec::Footprint,
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &spec,
            |b, &spec| {
                let (mut net, mut wl) = SimulationBuilder::paper_default()
                    .routing(spec)
                    .traffic(TrafficSpec::UniformRandom)
                    .injection_rate(0.3)
                    .seed(1)
                    .build()
                    .unwrap();
                net.run(&mut *wl, 500); // steady state
                b.iter(|| net.run(&mut *wl, CYCLES));
            },
        );
    }
    g.finish();
}

fn bench_mesh_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim-cycles-mesh-size");
    const CYCLES: u64 = 200;
    g.sample_size(10);
    for k in [4u16, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{k}x{k}")), &k, |b, &k| {
            let (mut net, mut wl) = SimulationBuilder::mesh(k)
                .routing(RoutingSpec::Footprint)
                .traffic(TrafficSpec::UniformRandom)
                .injection_rate(0.3)
                .seed(1)
                .build()
                .unwrap();
            net.run(&mut *wl, 200);
            b.iter(|| net.run(&mut *wl, CYCLES));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cycles, bench_mesh_scaling, bench_sweep_parallel);
criterion_main!(benches);
