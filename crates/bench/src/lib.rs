//! Shared driver code for the experiment binaries (one per paper
//! table/figure) and the criterion microbenchmarks.
//!
//! The central abstraction is [`CurveSet`]: a figure declares *all* of
//! its latency-throughput curves up front, and `CurveSet::run`
//! flattens every (curve × rate) pair into one
//! [`footprint_core::JobSet`] so the whole figure saturates the worker
//! pool instead of parallelizing one curve at a time. Each point runs
//! exactly what [`SimulationBuilder::sweep`] would run for that curve
//! (same derived per-rate seed, same summary), so a figure produced
//! through a `CurveSet` is bit-identical to sweeping its curves one by
//! one — and to `FOOTPRINT_THREADS=1` sequential execution.

use std::io;
use std::path::PathBuf;

use footprint_core::{JobSet, RoutingSpec, RunReport, SimulationBuilder, TrafficSpec};
use footprint_sim::{EventTrace, ProbePair};
use footprint_stats::{Curve, TimelineProbe};

/// Standard offered-load sweep for latency-throughput figures: 0.02 to
/// 0.60 flits/node/cycle.
pub fn default_rates() -> Vec<f64> {
    let mut rates = Vec::new();
    let mut r = 0.02;
    while r < 0.6005 {
        rates.push((r * 1000.0_f64).round() / 1000.0);
        r += if r < 0.30 { 0.04 } else { 0.03 };
    }
    rates
}

/// A sparser, cheaper sweep for smoke tests and CI.
pub fn quick_rates() -> Vec<f64> {
    vec![0.05, 0.15, 0.25, 0.35, 0.45, 0.55]
}

/// Phase lengths used by the experiment binaries. Tuned so a full figure
/// regenerates in minutes on a laptop; the paper's qualitative shapes are
/// stable at these lengths (longer runs sharpen the numbers).
#[derive(Debug, Clone, Copy)]
pub struct Phases {
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measurement: u64,
}

impl Phases {
    /// Figure-quality phases.
    pub const FULL: Phases = Phases {
        warmup: 3_000,
        measurement: 6_000,
    };

    /// Smoke-test phases.
    pub const QUICK: Phases = Phases {
        warmup: 500,
        measurement: 1_000,
    };
}

/// Reads phases from the `FOOTPRINT_QUICK` environment variable: set it to
/// run every experiment binary in smoke mode.
pub fn phases_from_env() -> Phases {
    if std::env::var_os("FOOTPRINT_QUICK").is_some() {
        Phases::QUICK
    } else {
        Phases::FULL
    }
}

/// Observability options for the experiment binaries.
///
/// Assembled from the environment by [`observe_from_env`]; the figure
/// binaries stay probe-free (and overhead-free) unless `FOOTPRINT_OBSERVE`
/// is set.
#[derive(Debug, Clone, Copy)]
pub struct ObserveOpts {
    /// Timeline sampling stride in cycles (`FOOTPRINT_TIMELINE_STRIDE`,
    /// default 100).
    pub stride: u64,
    /// Event-trace ring capacity in records (`FOOTPRINT_TRACE_CAP`,
    /// default 65536 — the trace keeps the *last* N events).
    pub trace_capacity: usize,
}

impl Default for ObserveOpts {
    fn default() -> Self {
        ObserveOpts {
            stride: 100,
            trace_capacity: 65_536,
        }
    }
}

/// Reads observability options from the environment: `None` unless
/// `FOOTPRINT_OBSERVE` is set, with `FOOTPRINT_TIMELINE_STRIDE` and
/// `FOOTPRINT_TRACE_CAP` overriding the defaults.
pub fn observe_from_env() -> Option<ObserveOpts> {
    std::env::var_os("FOOTPRINT_OBSERVE")?;
    let mut opts = ObserveOpts::default();
    if let Some(s) = std::env::var_os("FOOTPRINT_TIMELINE_STRIDE") {
        if let Some(n) = s.to_str().and_then(|s| s.trim().parse::<u64>().ok()) {
            if n > 0 {
                opts.stride = n;
            }
        }
    }
    if let Some(s) = std::env::var_os("FOOTPRINT_TRACE_CAP") {
        if let Some(n) = s.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                opts.trace_capacity = n;
            }
        }
    }
    Some(opts)
}

/// Where observability artifacts land: the `results/` directory (created
/// on demand), overridable with `FOOTPRINT_RESULTS_DIR`.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var_os("FOOTPRINT_RESULTS_DIR")
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Runs `builder` once with the full observability stack attached — an
/// occupancy/link-utilization timeline (per-router rows included) and a
/// bounded flit-event tracer — and writes `<label>_timeline.csv`,
/// `<label>_routers.csv` and `<label>_events.jsonl` into [`results_dir`].
///
/// Returns the run's report and the artifact paths.
///
/// # Errors
///
/// Propagates filesystem errors from the exporters.
///
/// # Panics
///
/// Panics on configuration errors — experiment configurations are static
/// and must be valid.
pub fn observed_run(
    label: &str,
    builder: &SimulationBuilder,
    opts: ObserveOpts,
) -> io::Result<(RunReport, Vec<PathBuf>)> {
    let mut timeline = TimelineProbe::new(opts.stride).with_router_rows();
    let mut trace = EventTrace::with_capacity(opts.trace_capacity);
    let report = {
        let mut pair = ProbePair::new(&mut timeline, &mut trace);
        builder
            .run_with(footprint_core::RunOptions::new().probe(&mut pair))
            .expect("experiment configuration must be valid")
    };
    let dir = results_dir()?;
    let paths = vec![
        dir.join(format!("{label}_timeline.csv")),
        dir.join(format!("{label}_routers.csv")),
        dir.join(format!("{label}_events.jsonl")),
    ];
    timeline.save_mesh_csv(&paths[0])?;
    timeline.save_router_csv(&paths[1])?;
    trace.save_jsonl(&paths[2])?;
    Ok((report, paths))
}

/// Prints the artifact list of an [`observed_run`] to stdout.
pub fn print_artifacts(label: &str, paths: &[PathBuf]) {
    for p in paths {
        println!("# {label}: wrote {}", p.display());
    }
}

/// Builds the baseline 8×8 builder for an algorithm/pattern pair.
pub fn paper_builder(
    routing: RoutingSpec,
    traffic: TrafficSpec,
    phases: Phases,
) -> SimulationBuilder {
    SimulationBuilder::paper_default()
        .routing(routing)
        .traffic(traffic)
        .warmup(phases.warmup)
        .measurement(phases.measurement)
        .seed(0x0F00)
}

/// Sweeps one latency-throughput curve (a single-curve [`CurveSet`]).
///
/// # Panics
///
/// Panics on configuration errors — experiment configurations are static
/// and must be valid.
pub fn sweep_curve(
    routing: RoutingSpec,
    traffic: TrafficSpec,
    rates: &[f64],
    phases: Phases,
) -> Curve {
    paper_builder(routing, traffic, phases)
        .sweep_with(rates, footprint_core::SweepOptions::new())
        .expect("experiment configuration must be valid")
}

/// A batch of labelled latency-throughput curves sharing one rate axis,
/// executed as a single flat job set.
///
/// Figures with many curves (e.g. Figure 5: 3 patterns × 7 algorithms)
/// add every curve here and call [`CurveSet::run`] once; all
/// (curve × rate) points then compete for the same worker pool, so the
/// slowest curve no longer serializes the figure. Curves come back in
/// insertion order.
pub struct CurveSet {
    rates: Vec<f64>,
    specs: Vec<CurveSpec>,
}

struct CurveSpec {
    label: String,
    builder: SimulationBuilder,
    latency_class: Option<u8>,
}

impl CurveSet {
    /// A batch over the given offered-load axis.
    #[must_use]
    pub fn new(rates: &[f64]) -> Self {
        CurveSet {
            rates: rates.to_vec(),
            specs: Vec::new(),
        }
    }

    /// Adds a curve labelled with the builder's routing-algorithm name.
    pub fn add(&mut self, builder: SimulationBuilder) -> &mut Self {
        let label = builder.routing_spec().name().to_string();
        self.add_labeled(label, builder)
    }

    /// Adds a curve under an explicit label.
    pub fn add_labeled(&mut self, label: impl Into<String>, builder: SimulationBuilder) -> &mut Self {
        self.add_class(label, builder, None)
    }

    /// Adds a curve summarizing a single traffic class (e.g. the
    /// background class of the Figure 9 hotspot experiment).
    pub fn add_class(
        &mut self,
        label: impl Into<String>,
        builder: SimulationBuilder,
        latency_class: Option<u8>,
    ) -> &mut Self {
        self.specs.push(CurveSpec {
            label: label.into(),
            builder,
            latency_class,
        });
        self
    }

    /// Number of curves queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when no curves are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs every (curve × rate) point as one flat job set and
    /// reassembles the curves in insertion order.
    ///
    /// # Panics
    ///
    /// Panics on configuration errors — experiment configurations are
    /// static and must be valid.
    #[must_use]
    pub fn run(self) -> Vec<Curve> {
        let mut jobs = JobSet::new();
        for spec in &self.specs {
            for (index, &rate) in self.rates.iter().enumerate() {
                let point = spec.builder.sweep_point(index, rate);
                let class = spec.latency_class;
                jobs.push(move || {
                    point
                        .run_sweep_point(class)
                        .expect("experiment configuration must be valid")
                });
            }
        }
        let mut points = jobs.run().into_iter();
        self.specs
            .iter()
            .map(|spec| {
                let mut curve = Curve::new(spec.label.clone());
                for _ in 0..self.rates.len() {
                    curve.push(points.next().expect("one result per submitted job"));
                }
                curve
            })
            .collect()
    }
}

/// Prints a set of curves as aligned columns: one block per curve, in the
/// `offered accepted latency` format the paper's figures plot.
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("## {title}");
    for c in curves {
        print!("{c}");
        if let Some(sat) = c.saturation_throughput(3.0) {
            println!("# saturation throughput ({}): {:.3}", c.label, sat);
        }
        println!();
    }
}

/// Relative gain of `ours` over `baseline` ((ours - baseline) / baseline).
pub fn gain(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (ours - baseline) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_are_increasing_and_bounded() {
        let rates = default_rates();
        assert!(rates.len() > 8);
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        assert!(*rates.last().unwrap() <= 0.61);
        assert!(rates[0] >= 0.01);
    }

    #[test]
    fn quick_phases_are_cheaper() {
        let (quick, full) = (Phases::QUICK, Phases::FULL);
        assert!(quick.measurement < full.measurement);
        assert!(quick_rates().windows(2).all(|w| w[0] < w[1]));
    }
}
