//! Quick behavioral sanity check: Footprint vs DBAR vs others on the
//! paper's key workloads, with timing. Not a paper figure; a development
//! aid.

use footprint_core::{RoutingSpec, RunOptions, SimulationBuilder, TrafficSpec};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    for traffic in [TrafficSpec::Transpose, TrafficSpec::Shuffle, TrafficSpec::UniformRandom] {
        println!("== {traffic} (8x8, 10 VCs, rate 0.40) ==");
        for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::OddEven, RoutingSpec::Dor] {
            let t = Instant::now();
            let r = SimulationBuilder::paper_default()
                .routing(spec)
                .traffic(traffic)
                .injection_rate(0.40)
                .warmup(1000)
                .measurement(2000)
                .run_with(RunOptions::new())
                .unwrap();
            println!(
                "  {:<16} thr {:.3} lat {:>8.1} blocks {:>8} ({:.2}s)",
                spec.name(), r.latency.throughput, r.latency.mean_latency, r.va_blocks,
                t.elapsed().as_secs_f64()
            );
        }
    }
    // Hotspot: background latency at bg 0.3, hotspot rate 0.5.
    println!("== hotspot (bg 0.3, hs 0.5) ==");
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
        let r = SimulationBuilder::paper_default()
            .routing(spec)
            .traffic(TrafficSpec::PAPER_HOTSPOT)
            .injection_rate(0.5)
            .warmup(1000)
            .measurement(2000)
            .run_with(RunOptions::new())
            .unwrap();
        println!(
            "  {:<16} bg-lat {:>8.1} bg-thr {:.3} hs-thr {:.3}",
            spec.name(), r.class(0).mean_latency, r.class(0).throughput, r.class(1).throughput
        );
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
