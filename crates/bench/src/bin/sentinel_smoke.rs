//! Sentinel smoke test (run by CI).
//!
//! Three checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Audited sweep** — a quick Footprint sweep with the sentinel
//!    enabled on every point, once on a healthy mesh and once under the
//!    standard 1-link-cut fault plan. Zero invariant violations expected;
//!    both curves must be bit-identical to their unaudited twins.
//!
//! 2. **Negative test** — a deliberately broken router (the same
//!    [`BlackHole`] hook as `obs_smoke`) must trip the sentinel with a
//!    protocol-deadlock finding, surfaced as the typed
//!    [`RunError::InvariantViolated`].
//!
//! 3. **Kill/resume drill** — a checkpointed sweep is started in a child
//!    process (this same binary re-executed with `SENTINEL_SMOKE_VICTIM`
//!    set), killed with SIGKILL once the journal holds at least one
//!    record, and then resumed in this process. The resumed curve must be
//!    bit-identical to an uninterrupted run.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use footprint_bench::{phases_from_env, results_dir};
use footprint_core::{
    RoutingSpec, RunError, SimulationBuilder, SweepJournal, SweepOptions, TrafficSpec,
};
use footprint_routing::{RoutingAlgorithm, RoutingCtx, VcReallocationPolicy, VcRequest};
use footprint_sim::{FlowSet, Network, Sentinel, SentinelViolation, SimConfig, SingleFlow};
use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId};
use rand::RngCore;

/// The deliberately broken algorithm from `obs_smoke`: injection works,
/// but no head is ever routed.
struct BlackHole;

impl RoutingAlgorithm for BlackHole {
    fn name(&self) -> &'static str {
        "blackhole"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, _ctx: &RoutingCtx<'_>, _rng: &mut dyn RngCore, _out: &mut Vec<VcRequest>) {}
}

const VICTIM_ENV: &str = "SENTINEL_SMOKE_VICTIM";
const DRILL_SEED: u64 = 0x5EED;

fn quick_builder() -> SimulationBuilder {
    let phases = phases_from_env();
    SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .warmup(phases.warmup.min(500))
        .measurement(phases.measurement.min(1_500))
        .seed(DRILL_SEED)
}

fn drill_rates() -> Vec<f64> {
    (1..=8).map(|i| i as f64 * 0.05).collect()
}

/// Check 1: the sentinel stays quiet on healthy and 1-link-cut sweeps,
/// and perturbs nothing.
fn audited_sweep() -> Result<(), String> {
    let rates = drill_rates();
    let plain = quick_builder()
        .sweep_with(&rates, SweepOptions::new())
        .map_err(|e| format!("plain sweep failed: {e}"))?;
    let audited = quick_builder()
        .sweep_with(&rates, SweepOptions::new().sentinel(true))
        .map_err(|e| format!("sentinel flagged a healthy sweep: {e}"))?;
    if plain != audited {
        return Err("sentinel-on curve differs from the plain curve".into());
    }
    let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
    let opts = || SweepOptions::new().faults(plan.clone()).watchdog(50_000);
    let faulted_plain = quick_builder()
        .sweep_with(&rates, opts())
        .map_err(|e| format!("faulted sweep failed: {e}"))?;
    let faulted_audited = quick_builder()
        .sweep_with(&rates, opts().sentinel(true))
        .map_err(|e| format!("sentinel flagged the 1-link-cut sweep: {e}"))?;
    if faulted_plain != faulted_audited {
        return Err("sentinel-on faulted curve differs from the plain one".into());
    }
    println!(
        "audited sweep: {} healthy + {} faulted points, zero violations, bit-identical",
        rates.len(),
        rates.len()
    );
    Ok(())
}

/// Check 2: an injected violation surfaces as the typed error.
fn injected_violation() -> Result<(), String> {
    let algo: Box<dyn RoutingAlgorithm> = Box::new(BlackHole);
    let mut net = Network::new(SimConfig::small(), algo, 7).map_err(|e| e.to_string())?;
    let mut wl = FlowSet::new(vec![SingleFlow {
        src: NodeId(0),
        dest: NodeId(15),
        rate: 1.0,
        size: 1,
    }]);
    let mut sentinel = Sentinel::with_intervals(1, 1);
    for _ in 0..100 {
        net.step_probed(&mut wl, &mut sentinel);
        if sentinel.tripped() {
            break;
        }
    }
    let report = sentinel
        .take_report()
        .ok_or("sentinel never tripped on the broken router")?;
    if !matches!(report.violation, SentinelViolation::ProtocolDeadlock(_)) {
        return Err(format!("expected a deadlock finding, got: {}", report.violation));
    }
    let err = RunError::from(report);
    let rendered = err.to_string();
    if !matches!(err, RunError::InvariantViolated(_)) {
        return Err(format!("expected InvariantViolated, got: {rendered}"));
    }
    let out = results_dir().map_err(|e| e.to_string())?.join("sentinel_smoke_violation.txt");
    std::fs::write(&out, format!("{rendered}\n")).map_err(|e| e.to_string())?;
    println!("injected violation: {rendered}");
    println!("wrote {}", out.display());
    Ok(())
}

/// Victim mode (child process): run the checkpointed sweep to completion.
/// The parent SIGKILLs this process partway through.
fn victim(journal: &str) -> Result<(), String> {
    quick_builder()
        .sweep_with(
            &drill_rates(),
            SweepOptions::new().threads(2).checkpoint(journal),
        )
        .map_err(|e| format!("victim sweep failed: {e}"))?;
    Ok(())
}

/// Check 3: SIGKILL mid-sweep, then resume bit-identically.
fn kill_resume_drill() -> Result<(), String> {
    let rates = drill_rates();
    let baseline = quick_builder()
        .sweep_with(&rates, SweepOptions::new())
        .map_err(|e| format!("baseline sweep failed: {e}"))?;
    let journal = results_dir()
        .map_err(|e| e.to_string())?
        .join("sentinel_smoke_drill.journal");
    let _ = std::fs::remove_file(&journal);

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut child = std::process::Command::new(exe)
        .env(VICTIM_ENV, &journal)
        .spawn()
        .map_err(|e| format!("cannot spawn victim: {e}"))?;
    // Kill as soon as the journal holds at least one durable record (or
    // give up waiting and let the child finish — resume still must work).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let records = std::fs::read_to_string(&journal)
            .map(|s| s.lines().skip(1).count())
            .unwrap_or(0);
        let exited = child.try_wait().map_err(|e| e.to_string())?.is_some();
        if records >= 1 || exited || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill(); // SIGKILL on unix; no-op if already gone
    let _ = child.wait();

    let restored = SweepJournal::open(&journal, DRILL_SEED, &rates)
        .map_err(|e| format!("journal unreadable after kill: {e}"))?
        .progress();
    println!("after SIGKILL: {restored}");
    if restored.completed >= rates.len() {
        println!("note: victim finished before the kill landed; resume is a pure replay");
    }

    let resumed = quick_builder()
        .sweep_with(
            &rates,
            SweepOptions::new().threads(2).checkpoint(&journal),
        )
        .map_err(|e| format!("resume failed: {e}"))?;
    if resumed != baseline {
        return Err("resumed curve differs from the uninterrupted baseline".into());
    }
    if format!("{resumed}") != format!("{baseline}") {
        return Err("resumed curve renders differently from the baseline".into());
    }
    let final_progress = SweepJournal::open(&journal, DRILL_SEED, &rates)
        .map_err(|e| e.to_string())?
        .progress();
    if !final_progress.is_complete() {
        return Err(format!("journal incomplete after resume: {final_progress}"));
    }
    println!("kill/resume drill: {final_progress}; curve bit-identical to baseline");
    let _ = std::fs::remove_file(&journal);
    Ok(())
}

fn main() -> ExitCode {
    if let Ok(journal) = std::env::var(VICTIM_ENV) {
        return match victim(&journal) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("victim: {e}");
                ExitCode::FAILURE
            }
        };
    }
    for (name, check) in [
        ("audited sweep", audited_sweep as fn() -> Result<(), String>),
        ("injected violation", injected_violation),
        ("kill/resume drill", kill_resume_drill),
    ] {
        if let Err(e) = check() {
            eprintln!("FAILED {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("sentinel smoke: all checks passed");
    ExitCode::SUCCESS
}
