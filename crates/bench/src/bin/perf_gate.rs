//! Perf-regression gate: compares a freshly measured `BENCH_sim.json`
//! against the committed baseline and fails (exit 1) when a tracked
//! machine-portable metric regressed beyond its tolerance band.
//!
//! Only *ratio* metrics are compared — the active-set scheduler speedup
//! and the sentinel overhead — never wall-clock numbers, which move with
//! the runner hardware:
//!
//! * `scheduler.speedup` regresses when the fresh value drops below 60%
//!   of the committed baseline (the band absorbs runner noise; a real
//!   regression — the scheduler silently degrading to a dense walk —
//!   shows up as a collapse toward 1.0×).
//! * `sentinel.overhead` regresses when the fresh value exceeds both the
//!   committed baseline + 10 points and the 15% budget (a fresh value
//!   within budget never fails, however noisy the baseline).
//!
//! Usage: `perf_gate <fresh.json> <baseline.json>`.
//!
//! A baseline that predates a metric is skipped with a note (schema
//! transitions must not brick CI); a *fresh* file missing a metric fails,
//! because that means the harness stopped measuring it.

use std::process::ExitCode;

/// Minimum acceptable fraction of the baseline scheduler speedup.
const SPEEDUP_RETENTION: f64 = 0.6;
/// Absolute headroom over the baseline sentinel overhead.
const OVERHEAD_SLACK: f64 = 0.10;
/// The sentinel overhead budget (mirrors the harness's published budget).
const OVERHEAD_BUDGET: f64 = 0.15;

/// Extracts `"field": <number>` from within the object that follows
/// `"section"` in hand-written JSON of the shape `perf.rs` emits. Not a
/// JSON parser — just enough string surgery for our own flat output.
fn extract(json: &str, section: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{section}\""))?;
    let body = &json[start..];
    let end = body.find('}').unwrap_or(body.len());
    let scoped = &body[..end];
    let fstart = scoped.find(&format!("\"{field}\""))?;
    let after = &scoped[fstart..];
    let colon = after.find(':')?;
    let value = after[colon + 1..]
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?;
    value.parse().ok()
}

fn run(fresh: &str, baseline: &str) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();

    let fresh_speedup = extract(fresh, "scheduler", "speedup")
        .ok_or("fresh benchmark is missing scheduler.speedup — did the harness stop measuring the active-set scheduler?")?;
    match extract(baseline, "scheduler", "speedup") {
        Some(base) => {
            let floor = base * SPEEDUP_RETENTION;
            if fresh_speedup < floor {
                return Err(format!(
                    "scheduler.speedup regressed: fresh {fresh_speedup:.2}x < {floor:.2}x \
                     ({:.0}% of committed baseline {base:.2}x)",
                    SPEEDUP_RETENTION * 100.0
                ));
            }
            notes.push(format!(
                "scheduler.speedup ok: fresh {fresh_speedup:.2}x vs baseline {base:.2}x \
                 (floor {floor:.2}x)"
            ));
        }
        None => notes.push(format!(
            "scheduler.speedup: no committed baseline yet (fresh {fresh_speedup:.2}x) — skipped"
        )),
    }

    let fresh_overhead = extract(fresh, "sentinel", "overhead")
        .ok_or("fresh benchmark is missing sentinel.overhead")?;
    match extract(baseline, "sentinel", "overhead") {
        Some(base) => {
            let ceiling = (base + OVERHEAD_SLACK).max(OVERHEAD_BUDGET);
            if fresh_overhead > ceiling {
                return Err(format!(
                    "sentinel.overhead regressed: fresh {:.1}% > ceiling {:.1}% \
                     (baseline {:.1}% + {:.0} points, floor at the {:.0}% budget)",
                    fresh_overhead * 100.0,
                    ceiling * 100.0,
                    base * 100.0,
                    OVERHEAD_SLACK * 100.0,
                    OVERHEAD_BUDGET * 100.0
                ));
            }
            notes.push(format!(
                "sentinel.overhead ok: fresh {:.1}% vs baseline {:.1}% (ceiling {:.1}%)",
                fresh_overhead * 100.0,
                base * 100.0,
                ceiling * 100.0
            ));
        }
        None => notes.push(format!(
            "sentinel.overhead: no committed baseline yet (fresh {:.1}%) — skipped",
            fresh_overhead * 100.0
        )),
    }

    Ok(notes)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh_path, baseline_path] = &args[..] else {
        eprintln!("usage: perf_gate <fresh.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let fresh = read(fresh_path);
    let baseline = read(baseline_path);
    match run(&fresh, &baseline) {
        Ok(notes) => {
            for n in notes {
                println!("perf_gate: {n}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("perf_gate: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(speedup: f64, overhead: f64) -> String {
        format!(
            "{{\n  \"sweep\": {{\n    \"speedup\": 1.50,\n    \"bit_identical\": true\n  }},\n  \
             \"sentinel\": {{\n    \"overhead\": {overhead:.4},\n    \"budget\": 0.15\n  }},\n  \
             \"scheduler\": {{\n    \"load\": 0.05,\n    \"speedup\": {speedup:.2},\n    \
             \"bit_identical\": true\n  }}\n}}\n"
        )
    }

    #[test]
    fn extract_scopes_fields_to_their_section() {
        let json = bench_json(2.5, 0.08);
        // `speedup` appears in both `sweep` and `scheduler`; extraction
        // must resolve the one inside the requested section.
        assert_eq!(extract(&json, "sweep", "speedup"), Some(1.50));
        assert_eq!(extract(&json, "scheduler", "speedup"), Some(2.5));
        assert_eq!(extract(&json, "sentinel", "overhead"), Some(0.08));
        assert_eq!(extract(&json, "scheduler", "missing"), None);
        assert_eq!(extract(&json, "missing", "speedup"), None);
    }

    #[test]
    fn steady_metrics_pass() {
        let base = bench_json(2.5, 0.08);
        let fresh = bench_json(2.3, 0.10);
        let notes = run(&fresh, &base).unwrap();
        assert_eq!(notes.len(), 2);
    }

    #[test]
    fn collapsed_speedup_fails() {
        let base = bench_json(2.5, 0.08);
        let fresh = bench_json(1.0, 0.08);
        let err = run(&fresh, &base).unwrap_err();
        assert!(err.contains("scheduler.speedup regressed"), "{err}");
    }

    #[test]
    fn blown_overhead_fails_only_past_budget_and_slack() {
        let base = bench_json(2.5, 0.08);
        // 14% is within the 15% budget: never a failure.
        assert!(run(&bench_json(2.5, 0.14), &base).is_ok());
        // 17% is within baseline + 10 points (18%): still fine.
        assert!(run(&bench_json(2.5, 0.17), &base).is_ok());
        // 19% exceeds both: regression.
        let err = run(&bench_json(2.5, 0.19), &base).unwrap_err();
        assert!(err.contains("sentinel.overhead regressed"), "{err}");
    }

    #[test]
    fn missing_fresh_metric_fails_missing_baseline_skips() {
        let with = bench_json(2.5, 0.08);
        let without_scheduler = with.replace("\"scheduler\"", "\"schedx\"");
        assert!(run(&without_scheduler, &with).is_err());
        let notes = run(&with, &without_scheduler).unwrap();
        assert!(notes.iter().any(|n| n.contains("skipped")), "{notes:?}");
    }
}
