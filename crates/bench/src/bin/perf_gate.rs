//! Perf-regression gate: compares a freshly measured `BENCH_sim.json`
//! against the committed baseline and fails (exit 1) when a tracked
//! metric regressed beyond its tolerance band.
//!
//! Two kinds of metric are compared:
//!
//! * *Ratio* metrics — the active-set scheduler speedup and the sentinel
//!   overhead — are machine-portable and compared directly.
//! * *Same-runner throughput* metrics — single-thread cycles/sec and the
//!   4-worker sweep wall-clock — are hardware-dependent in absolute terms,
//!   but CI measures fresh and baseline on the same runner lineage, so a
//!   *collapse relative to the committed baseline* is still a regression
//!   signal. Their bands are wide (50% retention) to absorb runner noise;
//!   a real regression (an accidental O(n²) in the hot path, the pool
//!   serializing) blows through 2× easily.
//!
//! Concretely:
//!
//! * `scheduler.speedup` regresses when the fresh value drops below 60%
//!   of the committed baseline (a real regression — the scheduler silently
//!   degrading to a dense walk — shows up as a collapse toward 1.0×).
//! * `sentinel.overhead` regresses when the fresh value exceeds both the
//!   committed baseline + 10 points and the 15% budget (a fresh value
//!   within budget never fails, however noisy the baseline).
//! * `single_thread.cycles_per_sec` regresses when the fresh value drops
//!   below 50% of the committed baseline. The gate also reports the
//!   improvement ratio — the number the changelog quotes.
//! * `sweep.parallel_secs_4t` regresses when the fresh 4-worker sweep
//!   takes more than 2× the committed baseline's wall-clock. The gate also
//!   reports fresh throughput against the *baseline sequential* time: the
//!   end-to-end sweep speedup a user of the committed revision gains by
//!   updating. When either file records `sweep.machine_threads` < 4, the
//!   comparison is skipped with a note: a 4-worker pool on a 1-core box
//!   measures the OS scheduler's mood, and gating on it would fail PRs for
//!   the runner's hardware rather than the code.
//! * `ensemble.per_lane_vs_single_thread` (warm ensemble per-lane credited
//!   throughput over the single-thread rate, a machine-portable ratio)
//!   must clear the 1.5× absolute floor and retain 60% of the committed
//!   baseline.
//! * `snapshot.hit_speedup` (warm-start cache hit over cold run) must
//!   exceed 1.0× outright and retain 60% of the committed baseline.
//!
//! Usage: `perf_gate <fresh.json> <baseline.json>`.
//!
//! A baseline that predates a metric is skipped with a note (schema
//! transitions must not brick CI); a *fresh* file missing a metric fails,
//! because that means the harness stopped measuring it.

use std::process::ExitCode;

/// Minimum acceptable fraction of the baseline scheduler speedup.
const SPEEDUP_RETENTION: f64 = 0.6;
/// Absolute headroom over the baseline sentinel overhead.
const OVERHEAD_SLACK: f64 = 0.10;
/// The sentinel overhead budget (mirrors the harness's published budget).
const OVERHEAD_BUDGET: f64 = 0.15;
/// Minimum acceptable fraction of baseline throughput (cycles/sec up,
/// sweep wall-clock down) for the same-runner metrics.
const THROUGHPUT_RETENTION: f64 = 0.5;
/// Absolute floor for the warm ensemble's per-lane credited throughput as
/// a multiple of the single-thread rate. The warm lanes skip their entire
/// warmup, so a healthy cache clears ~2×; dropping below 1.5× means the
/// restore path stopped paying for itself.
const ENSEMBLE_FLOOR: f64 = 1.5;
/// Minimum acceptable fraction of the baseline's ensemble and warm-start
/// ratios (both are machine-portable ratios, like the scheduler speedup).
const ENSEMBLE_RETENTION: f64 = 0.6;

/// Extracts `"field": <number>` from within the object that follows
/// `"section"` in hand-written JSON of the shape `perf.rs` emits. Not a
/// JSON parser — just enough string surgery for our own flat output. The
/// scan stops at the section's first closing brace, so gated fields must
/// precede any nested object or array in their section (the harness keeps
/// `sweep.by_threads` last for exactly this reason).
fn extract(json: &str, section: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{section}\""))?;
    let body = &json[start..];
    let end = body.find('}').unwrap_or(body.len());
    let scoped = &body[..end];
    let fstart = scoped.find(&format!("\"{field}\""))?;
    let after = &scoped[fstart..];
    let colon = after.find(':')?;
    let value = after[colon + 1..]
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?;
    value.parse().ok()
}

fn run(fresh: &str, baseline: &str) -> Result<Vec<String>, String> {
    let mut notes = Vec::new();

    let fresh_speedup = extract(fresh, "scheduler", "speedup")
        .ok_or("fresh benchmark is missing scheduler.speedup — did the harness stop measuring the active-set scheduler?")?;
    match extract(baseline, "scheduler", "speedup") {
        Some(base) => {
            let floor = base * SPEEDUP_RETENTION;
            if fresh_speedup < floor {
                return Err(format!(
                    "scheduler.speedup regressed: fresh {fresh_speedup:.2}x < {floor:.2}x \
                     ({:.0}% of committed baseline {base:.2}x)",
                    SPEEDUP_RETENTION * 100.0
                ));
            }
            notes.push(format!(
                "scheduler.speedup ok: fresh {fresh_speedup:.2}x vs baseline {base:.2}x \
                 (floor {floor:.2}x)"
            ));
        }
        None => notes.push(format!(
            "scheduler.speedup: no committed baseline yet (fresh {fresh_speedup:.2}x) — skipped"
        )),
    }

    let fresh_overhead = extract(fresh, "sentinel", "overhead")
        .ok_or("fresh benchmark is missing sentinel.overhead")?;
    match extract(baseline, "sentinel", "overhead") {
        Some(base) => {
            let ceiling = (base + OVERHEAD_SLACK).max(OVERHEAD_BUDGET);
            if fresh_overhead > ceiling {
                return Err(format!(
                    "sentinel.overhead regressed: fresh {:.1}% > ceiling {:.1}% \
                     (baseline {:.1}% + {:.0} points, floor at the {:.0}% budget)",
                    fresh_overhead * 100.0,
                    ceiling * 100.0,
                    base * 100.0,
                    OVERHEAD_SLACK * 100.0,
                    OVERHEAD_BUDGET * 100.0
                ));
            }
            notes.push(format!(
                "sentinel.overhead ok: fresh {:.1}% vs baseline {:.1}% (ceiling {:.1}%)",
                fresh_overhead * 100.0,
                base * 100.0,
                ceiling * 100.0
            ));
        }
        None => notes.push(format!(
            "sentinel.overhead: no committed baseline yet (fresh {:.1}%) — skipped",
            fresh_overhead * 100.0
        )),
    }

    let fresh_cps = extract(fresh, "single_thread", "cycles_per_sec")
        .ok_or("fresh benchmark is missing single_thread.cycles_per_sec")?;
    match extract(baseline, "single_thread", "cycles_per_sec") {
        Some(base) => {
            let floor = base * THROUGHPUT_RETENTION;
            if fresh_cps < floor {
                return Err(format!(
                    "single_thread.cycles_per_sec regressed: fresh {fresh_cps:.0} < {floor:.0} \
                     ({:.0}% of committed baseline {base:.0})",
                    THROUGHPUT_RETENTION * 100.0
                ));
            }
            notes.push(format!(
                "single_thread.cycles_per_sec ok: fresh {fresh_cps:.0} vs baseline {base:.0} \
                 → {:.2}x (floor {floor:.0})",
                fresh_cps / base
            ));
        }
        None => notes.push(format!(
            "single_thread.cycles_per_sec: no committed baseline yet (fresh {fresh_cps:.0}) — skipped"
        )),
    }

    let fresh_4t = extract(fresh, "sweep", "parallel_secs_4t")
        .ok_or("fresh benchmark is missing sweep.parallel_secs_4t — did the harness stop timing the 4-worker sweep?")?;
    // A 4-worker wall-clock measured on fewer than 4 hardware threads is
    // scheduler noise, not a perf signal: skip the comparison whenever
    // either side was undersubscribed. Files that predate the
    // `machine_threads` field gate as before (assume a wide-enough box).
    let undersubscribed = |json: &str| {
        extract(json, "sweep", "machine_threads").is_some_and(|m| m < 4.0)
    };
    if undersubscribed(fresh) || undersubscribed(baseline) {
        notes.push(format!(
            "sweep.parallel_secs_4t: measured on fewer than 4 hardware threads \
             (fresh {fresh_4t:.2}s) — undersubscribed, skipped"
        ));
    } else {
        match extract(baseline, "sweep", "parallel_secs_4t") {
            Some(base) => {
                let ceiling = base / THROUGHPUT_RETENTION;
                if fresh_4t > ceiling {
                    return Err(format!(
                        "sweep.parallel_secs_4t regressed: fresh {fresh_4t:.2}s > {ceiling:.2}s \
                         ({:.0}x the committed baseline {base:.2}s)",
                        1.0 / THROUGHPUT_RETENTION
                    ));
                }
                notes.push(format!(
                    "sweep.parallel_secs_4t ok: fresh {fresh_4t:.2}s vs baseline {base:.2}s \
                     (ceiling {ceiling:.2}s)"
                ));
            }
            None => notes.push(format!(
                "sweep.parallel_secs_4t: no committed baseline yet (fresh {fresh_4t:.2}s) — skipped"
            )),
        }
    }
    // Informational: end-to-end sweep gain over the committed revision's
    // sequential wall-clock (the headline `speedup` the docs quote).
    if let Some(base_seq) = extract(baseline, "sweep", "sequential_secs") {
        notes.push(format!(
            "sweep throughput vs committed sequential baseline: {:.2}x \
             ({base_seq:.2}s → {fresh_4t:.2}s on 4 workers)",
            base_seq / fresh_4t
        ));
    }

    // Warm-ensemble per-lane throughput as a multiple of the single-thread
    // rate: a ratio of two same-runner numbers, so machine-portable. Gated
    // against the absolute floor always, and against baseline retention
    // when a baseline exists.
    let fresh_ens = extract(fresh, "ensemble", "per_lane_vs_single_thread")
        .ok_or("fresh benchmark is missing ensemble.per_lane_vs_single_thread — did the harness stop measuring the ensemble engine?")?;
    if fresh_ens < ENSEMBLE_FLOOR {
        return Err(format!(
            "ensemble.per_lane_vs_single_thread below floor: fresh {fresh_ens:.2}x < \
             {ENSEMBLE_FLOOR:.1}x (warm lanes are no longer skipping their warmup)"
        ));
    }
    match extract(baseline, "ensemble", "per_lane_vs_single_thread") {
        Some(base) => {
            let floor = (base * ENSEMBLE_RETENTION).max(ENSEMBLE_FLOOR);
            if fresh_ens < floor {
                return Err(format!(
                    "ensemble.per_lane_vs_single_thread regressed: fresh {fresh_ens:.2}x < \
                     {floor:.2}x ({:.0}% of committed baseline {base:.2}x)",
                    ENSEMBLE_RETENTION * 100.0
                ));
            }
            notes.push(format!(
                "ensemble.per_lane_vs_single_thread ok: fresh {fresh_ens:.2}x vs baseline \
                 {base:.2}x (floor {floor:.2}x)"
            ));
        }
        None => notes.push(format!(
            "ensemble.per_lane_vs_single_thread: no committed baseline yet \
             (fresh {fresh_ens:.2}x, floor {ENSEMBLE_FLOOR:.1}x) — retention skipped"
        )),
    }

    // Warm-start cache hit speedup: must beat a cold run outright, and
    // must retain most of the committed baseline's gain.
    let fresh_hit = extract(fresh, "snapshot", "hit_speedup")
        .ok_or("fresh benchmark is missing snapshot.hit_speedup — did the harness stop measuring the warm-start cache?")?;
    if fresh_hit <= 1.0 {
        return Err(format!(
            "snapshot.hit_speedup below floor: fresh {fresh_hit:.2}x <= 1.0x \
             (a cache hit is no faster than a cold run)"
        ));
    }
    match extract(baseline, "snapshot", "hit_speedup") {
        Some(base) => {
            let floor = (base * ENSEMBLE_RETENTION).max(1.0);
            if fresh_hit < floor {
                return Err(format!(
                    "snapshot.hit_speedup regressed: fresh {fresh_hit:.2}x < {floor:.2}x \
                     ({:.0}% of committed baseline {base:.2}x)",
                    ENSEMBLE_RETENTION * 100.0
                ));
            }
            notes.push(format!(
                "snapshot.hit_speedup ok: fresh {fresh_hit:.2}x vs baseline {base:.2}x \
                 (floor {floor:.2}x)"
            ));
        }
        None => notes.push(format!(
            "snapshot.hit_speedup: no committed baseline yet (fresh {fresh_hit:.2}x) \
             — retention skipped"
        )),
    }

    Ok(notes)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, fresh_path, baseline_path] = &args[..] else {
        eprintln!("usage: perf_gate <fresh.json> <baseline.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let fresh = read(fresh_path);
    let baseline = read(baseline_path);
    match run(&fresh, &baseline) {
        Ok(notes) => {
            for n in notes {
                println!("perf_gate: {n}");
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("perf_gate: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(speedup: f64, overhead: f64) -> String {
        bench_json_perf(speedup, overhead, 9854.0, 7.54)
    }

    fn bench_json_perf(speedup: f64, overhead: f64, cps: f64, par4: f64) -> String {
        bench_json_full(speedup, overhead, cps, par4, 1.96, 1.92)
    }

    /// Mirrors the harness's emission order: gate-read sweep fields come
    /// before the nested `by_threads` array.
    fn bench_json_full(
        speedup: f64,
        overhead: f64,
        cps: f64,
        par4: f64,
        ens: f64,
        hit: f64,
    ) -> String {
        format!(
            "{{\n  \"single_thread\": {{\n    \"simulated_cycles\": 4000,\n    \
             \"cycles_per_sec\": {cps:.0}\n  }},\n  \
             \"sweep\": {{\n    \"rates\": 6,\n    \"sequential_secs\": {:.4},\n    \
             \"parallel_secs_4t\": {par4:.4},\n    \"speedup\": 1.00,\n    \
             \"machine_threads\": 8,\n    \
             \"bit_identical\": true,\n    \"by_threads\": [\n      \
             {{ \"threads\": 1, \"parallel_secs\": {par4:.4}, \"speedup\": 0.99, \"undersubscribed\": false }},\n      \
             {{ \"threads\": 8, \"parallel_secs\": {par4:.4}, \"undersubscribed\": true }}\n    ]\n  }},\n  \
             \"sentinel\": {{\n    \"overhead\": {overhead:.4}, \"budget\": 0.15\n  }},\n  \
             \"scheduler\": {{\n    \"load\": 0.05,\n    \"speedup\": {speedup:.2},\n    \
             \"bit_identical\": true\n  }},\n  \
             \"ensemble\": {{\n    \"lanes\": 4,\n    \"cycles_per_sec_per_lane\": {:.0},\n    \
             \"per_lane_vs_single_thread\": {ens:.2},\n    \"warm\": true\n  }},\n  \
             \"snapshot\": {{\n    \"cold_secs\": 1.0,\n    \"hit_secs\": {:.4},\n    \
             \"hit_speedup\": {hit:.2}\n  }}\n}}\n",
            par4 * 0.95,
            cps * ens,
            1.0 / hit,
        )
    }

    #[test]
    fn extract_scopes_fields_to_their_section() {
        let json = bench_json(2.5, 0.08);
        // `speedup` appears in `sweep`, `scheduler` and every `by_threads`
        // entry; extraction must resolve the one inside the requested
        // section, before its first nested brace.
        assert_eq!(extract(&json, "sweep", "speedup"), Some(1.00));
        assert_eq!(extract(&json, "scheduler", "speedup"), Some(2.5));
        assert_eq!(extract(&json, "sentinel", "overhead"), Some(0.08));
        assert_eq!(extract(&json, "sweep", "parallel_secs_4t"), Some(7.54));
        assert_eq!(extract(&json, "scheduler", "missing"), None);
        assert_eq!(extract(&json, "missing", "speedup"), None);
    }

    #[test]
    fn fields_after_a_nested_object_are_invisible() {
        // Documents the scoping rule the harness's emission order relies
        // on: anything after `by_threads` in the sweep section cannot be
        // extracted (the scan stops at the first `}`).
        let json = bench_json(2.5, 0.08).replace(
            "\"sequential_secs\"",
            "\"by_threads2\": [ { \"threads\": 1 } ],\n    \"sequential_secs\"",
        );
        assert_eq!(extract(&json, "sweep", "sequential_secs"), None);
    }

    #[test]
    fn steady_metrics_pass() {
        let base = bench_json(2.5, 0.08);
        let fresh = bench_json(2.3, 0.10);
        let notes = run(&fresh, &base).unwrap();
        assert_eq!(notes.len(), 7);
    }

    #[test]
    fn ensemble_gate_enforces_floor_and_retention() {
        let base = bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.96, 1.92);
        // Above floor and within retention: passes.
        assert!(run(&bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.80, 1.92), &base).is_ok());
        // Below the 1.5x absolute floor: fails even though 60% of the
        // baseline (1.18x) would technically allow it.
        let err =
            run(&bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.40, 1.92), &base).unwrap_err();
        assert!(err.contains("ensemble.per_lane_vs_single_thread"), "{err}");
        // Missing fresh section: the harness stopped measuring — fail.
        let fresh = bench_json(2.5, 0.08).replace("\"ensemble\"", "\"ensx\"");
        assert!(run(&fresh, &base).is_err());
        // Missing baseline section: schema transition — skip with a note.
        let old_base = base.replace("\"ensemble\"", "\"ensx\"");
        let notes = run(&bench_json(2.5, 0.08), &old_base).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("no committed baseline yet") && n.contains("ensemble")),
            "{notes:?}"
        );
    }

    #[test]
    fn snapshot_gate_requires_a_real_speedup() {
        let base = bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.96, 1.92);
        // A hit that is slower than a cold run fails outright.
        let err =
            run(&bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.96, 0.97), &base).unwrap_err();
        assert!(err.contains("snapshot.hit_speedup below floor"), "{err}");
        // 60% retention against the baseline's 1.92x → floor 1.15x.
        let err =
            run(&bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.96, 1.05), &base).unwrap_err();
        assert!(err.contains("snapshot.hit_speedup regressed"), "{err}");
        assert!(run(&bench_json_full(2.5, 0.08, 9854.0, 7.54, 1.96, 1.30), &base).is_ok());
        // Missing baseline: skip with a note.
        let old_base = base.replace("\"snapshot\"", "\"snapx\"");
        let notes = run(&bench_json(2.5, 0.08), &old_base).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("snapshot.hit_speedup: no committed baseline")),
            "{notes:?}"
        );
    }

    #[test]
    fn collapsed_speedup_fails() {
        let base = bench_json(2.5, 0.08);
        let fresh = bench_json(1.0, 0.08);
        let err = run(&fresh, &base).unwrap_err();
        assert!(err.contains("scheduler.speedup regressed"), "{err}");
    }

    #[test]
    fn blown_overhead_fails_only_past_budget_and_slack() {
        let base = bench_json(2.5, 0.08);
        // 14% is within the 15% budget: never a failure.
        assert!(run(&bench_json(2.5, 0.14), &base).is_ok());
        // 17% is within baseline + 10 points (18%): still fine.
        assert!(run(&bench_json(2.5, 0.17), &base).is_ok());
        // 19% exceeds both: regression.
        let err = run(&bench_json(2.5, 0.19), &base).unwrap_err();
        assert!(err.contains("sentinel.overhead regressed"), "{err}");
    }

    #[test]
    fn halved_cycles_per_sec_fails() {
        let base = bench_json_perf(2.5, 0.08, 20_000.0, 3.0);
        // 60% of baseline: inside the 50% retention band.
        assert!(run(&bench_json_perf(2.5, 0.08, 12_000.0, 3.0), &base).is_ok());
        let err = run(&bench_json_perf(2.5, 0.08, 9_000.0, 3.0), &base).unwrap_err();
        assert!(err.contains("single_thread.cycles_per_sec regressed"), "{err}");
    }

    #[test]
    fn doubled_sweep_wall_clock_fails() {
        let base = bench_json_perf(2.5, 0.08, 20_000.0, 3.0);
        assert!(run(&bench_json_perf(2.5, 0.08, 20_000.0, 5.5), &base).is_ok());
        let err = run(&bench_json_perf(2.5, 0.08, 20_000.0, 6.5), &base).unwrap_err();
        assert!(err.contains("sweep.parallel_secs_4t regressed"), "{err}");
    }

    #[test]
    fn undersubscribed_runner_skips_the_sweep_wall_clock() {
        let base = bench_json_perf(2.5, 0.08, 20_000.0, 3.0);
        // A doubled-and-then-some wall-clock would fail the gate — but not
        // when the fresh file was measured on a 1-core box.
        let fresh = bench_json_perf(2.5, 0.08, 20_000.0, 9.0)
            .replace("\"machine_threads\": 8", "\"machine_threads\": 1");
        let notes = run(&fresh, &base).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("undersubscribed, skipped")),
            "{notes:?}"
        );
        // An undersubscribed *baseline* is just as meaningless a reference.
        let narrow_base = base.replace("\"machine_threads\": 8", "\"machine_threads\": 2");
        let slow_fresh = bench_json_perf(2.5, 0.08, 20_000.0, 9.0);
        assert!(run(&slow_fresh, &narrow_base).is_ok());
        // Files predating the field still gate: the old schema means the
        // old behaviour.
        let old_base = base.replace("    \"machine_threads\": 8,\n", "");
        let old_fresh = bench_json_perf(2.5, 0.08, 20_000.0, 9.0)
            .replace("    \"machine_threads\": 8,\n", "");
        let err = run(&old_fresh, &old_base).unwrap_err();
        assert!(err.contains("sweep.parallel_secs_4t regressed"), "{err}");
    }

    #[test]
    fn improvement_ratio_is_reported() {
        let base = bench_json_perf(2.5, 0.08, 10_000.0, 6.0);
        let fresh = bench_json_perf(2.5, 0.08, 20_000.0, 3.0);
        let notes = run(&fresh, &base).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("2.00x")),
            "cycles/sec ratio should be quoted: {notes:?}"
        );
        assert!(
            notes.iter().any(|n| n.contains("vs committed sequential baseline")),
            "{notes:?}"
        );
    }

    #[test]
    fn missing_fresh_metric_fails_missing_baseline_skips() {
        let with = bench_json(2.5, 0.08);
        let without_scheduler = with.replace("\"scheduler\"", "\"schedx\"");
        assert!(run(&without_scheduler, &with).is_err());
        let notes = run(&with, &without_scheduler).unwrap();
        assert!(notes.iter().any(|n| n.contains("skipped")), "{notes:?}");
    }
}
