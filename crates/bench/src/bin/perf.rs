//! Performance harness: measures simulated-cycles/sec on the hot path and
//! the wall-clock speedup of the parallel experiment engine, and records
//! both in `BENCH_sim.json` so the perf trajectory is tracked PR over PR.
//!
//! Measurements:
//!
//! * **single-thread cycles/sec** — one representative 8×8 Footprint
//!   uniform-random run (the per-cycle hot path: route computation, VC
//!   allocation, switch traversal), timed end to end.
//! * **sweep wall-clock** — the same `quick_rates()` sweep executed
//!   sequentially (`threads = 1`) and on the default pool; their ratio is
//!   the engine's speedup on this machine. Results are bit-identical
//!   between the two runs (asserted here, not just in the test suite).
//! * **sentinel overhead** — the pooled sweep re-run with the invariant
//!   sentinel enabled on every point; the ratio to the plain pooled sweep
//!   is the price of full runtime auditing (budget: ≤ 15%).
//! * **active-set scheduler speedup** — one low-load run (where most
//!   routers idle most cycles) timed under the dense reference loop and
//!   under the active-set scheduler; their ratio is the payoff of skipping
//!   idle components. The two reports are asserted bit-identical.
//!
//! Output path: `BENCH_sim.json` in the current directory, or the value
//! of `FOOTPRINT_BENCH_OUT`.

use footprint_bench::quick_rates;
use footprint_core::{
    exec, RoutingSpec, RunOptions, Scheduler, SimulationBuilder, SweepOptions, TrafficSpec,
};
use std::time::Instant;

fn builder() -> SimulationBuilder {
    SimulationBuilder::paper_default()
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.30)
        .warmup(1_000)
        .measurement(3_000)
        .seed(0xBE_5C)
}

fn main() {
    let threads = exec::num_threads();

    // 1. Hot-path throughput: simulated cycles per wall-clock second on
    // one core. Two timed runs, keep the faster (warm caches).
    let b = builder();
    let total_cycles = 4_000u64;
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        b.run().expect("static experiment config");
        best = best.min(t.elapsed().as_secs_f64());
    }
    let cycles_per_sec = total_cycles as f64 / best;

    // 2. Parallel-engine speedup on a quick sweep.
    let rates = quick_rates();
    let t = Instant::now();
    let sequential = b.sweep_on(&rates, None, 1).expect("static experiment config");
    let seq_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = b
        .sweep_on(&rates, None, threads)
        .expect("static experiment config");
    let par_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        sequential, parallel,
        "parallel sweep must be bit-identical to sequential"
    );
    let speedup = seq_secs / par_secs;

    // 3. Sentinel overhead: the same pooled sweep with every invariant
    // audited. The sentinel only observes, so the curve must not move.
    let t = Instant::now();
    let audited = b
        .sweep_with(
            &rates,
            SweepOptions::new().threads(threads).sentinel(true),
        )
        .expect("sentinel must stay quiet on a healthy sweep");
    let audited_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        parallel, audited,
        "sentinel-on sweep must be bit-identical to the plain sweep"
    );
    // Baseline against the faster of the two plain sweeps: on a 1-core
    // runner they do identical work and their spread is pure noise.
    let overhead = audited_secs / (seq_secs.min(par_secs)) - 1.0;

    // 4. Active-set scheduler payoff at low load: far from saturation most
    // routers are idle most cycles, which is exactly what the scheduler
    // skips. The dense loop is the reference; results must not move.
    let low_load = 0.02;
    let lb = builder().injection_rate(low_load).measurement(10_000);
    let timed = |scheduler: Scheduler| {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..2 {
            let t = Instant::now();
            report = Some(
                lb.run_with(RunOptions::new().scheduler(scheduler))
                    .expect("static experiment config"),
            );
            best = best.min(t.elapsed().as_secs_f64());
        }
        (best, report.expect("two timed runs"))
    };
    let (dense_secs, dense_report) = timed(Scheduler::Dense);
    let (active_secs, active_report) = timed(Scheduler::Active);
    assert_eq!(
        dense_report, active_report,
        "active-set scheduler must be bit-identical to the dense loop"
    );
    let sched_speedup = dense_secs / active_secs;

    let json = format!(
        "{{\n  \"single_thread\": {{\n    \"simulated_cycles\": {total_cycles},\n    \
         \"wall_secs\": {best:.4},\n    \"cycles_per_sec\": {cycles_per_sec:.0}\n  }},\n  \
         \"sweep\": {{\n    \"rates\": {},\n    \"threads\": {threads},\n    \
         \"sequential_secs\": {seq_secs:.4},\n    \"parallel_secs\": {par_secs:.4},\n    \
         \"speedup\": {speedup:.2},\n    \"bit_identical\": true\n  }},\n  \
         \"sentinel\": {{\n    \"audited_secs\": {audited_secs:.4},\n    \
         \"overhead\": {overhead:.4},\n    \"budget\": 0.15\n  }},\n  \
         \"scheduler\": {{\n    \"load\": {low_load},\n    \
         \"dense_secs\": {dense_secs:.4},\n    \"active_secs\": {active_secs:.4},\n    \
         \"speedup\": {sched_speedup:.2},\n    \"bit_identical\": true\n  }}\n}}\n",
        rates.len(),
    );
    let path = std::env::var("FOOTPRINT_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("single-thread: {cycles_per_sec:.0} simulated cycles/sec ({best:.2}s for {total_cycles} cycles)");
    println!(
        "sweep ({} rates): sequential {seq_secs:.2}s, parallel {par_secs:.2}s on {threads} thread(s) → {speedup:.2}x",
        rates.len()
    );
    println!(
        "sentinel: audited sweep {audited_secs:.2}s → {:.1}% overhead (budget 15%)",
        overhead * 100.0
    );
    println!(
        "scheduler (load {low_load}): dense {dense_secs:.2}s, active {active_secs:.2}s → {sched_speedup:.2}x"
    );
    println!("wrote {path}");
}
