//! Performance harness: measures simulated-cycles/sec on the hot path and
//! the wall-clock scaling of the parallel experiment engine, and records
//! both in `BENCH_sim.json` so the perf trajectory is tracked PR over PR.
//!
//! Measurements:
//!
//! * **single-thread cycles/sec** — one representative 8×8 Footprint
//!   uniform-random run (the per-cycle hot path: route computation, VC
//!   allocation, switch traversal), timed end to end. Best of two runs of
//!   4000 cycles; comparable across PRs only on the same runner, which is
//!   why the gate compares it as a *ratio* to the committed baseline.
//! * **sweep wall-clock** — the same `quick_rates()` sweep executed
//!   sequentially (`threads = 1`) and on pools of 1, 2, 4 and 8 workers.
//!   Each pooled run is asserted bit-identical to the sequential one. The
//!   per-pool speedup column is honest for *this* runner: on a single-CPU
//!   box it hovers near 1.0× however many workers are spawned — the
//!   cross-PR throughput gain shows up in the gate's ratio against the
//!   committed baseline instead. Rows whose pool is wider than the machine
//!   carry `"undersubscribed": true`, and the gate skips its 4-worker
//!   wall-clock comparison when either side was measured on fewer than 4
//!   hardware threads (see `sweep.machine_threads`).
//! * **sentinel overhead** — the 4-worker sweep re-run with the invariant
//!   sentinel enabled on every point; the ratio to the fastest plain sweep
//!   is the price of full runtime auditing (budget: ≤ 15%).
//! * **active-set scheduler speedup** — one low-load run (where most
//!   routers idle most cycles) timed under the dense reference loop and
//!   under the active-set scheduler; their ratio is the payoff of skipping
//!   idle components. The two reports are asserted bit-identical.
//! * **ensemble throughput** — a four-lane lockstep ensemble sweep with a
//!   warm snapshot cache: each lane restores its post-warmup state, so it
//!   is credited warmup + measurement cycles while simulating only the
//!   measurement window. `cycles_per_sec_per_lane` counts credited cycles
//!   per second of each lane's wall-clock share; every lane (cold and
//!   warm) is asserted bit-identical to the sequential sweep.
//! * **warm-start hit speedup** — one standalone run cold (cache miss,
//!   including snapshot serialization) against the same run warm (hit +
//!   restore); reports asserted identical, ratio recorded as
//!   `snapshot.hit_speedup`.
//!
//! Output path: `BENCH_sim.json` in the current directory, or the value
//! of `FOOTPRINT_BENCH_OUT`.

use footprint_bench::quick_rates;
use footprint_core::{
    RoutingSpec, RunOptions, Scheduler, SimulationBuilder, SweepOptions, TrafficSpec,
};
use std::time::Instant;

/// Worker-pool sizes the sweep is timed under.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];
/// The pool size whose wall-clock the gate tracks (`parallel_secs_4t`).
const HEADLINE_THREADS: usize = 4;

fn builder() -> SimulationBuilder {
    SimulationBuilder::paper_default()
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.30)
        .warmup(1_000)
        .measurement(3_000)
        .seed(0xBE_5C)
}

fn main() {
    // 1. Hot-path throughput: simulated cycles per wall-clock second on
    // one core. Two timed runs, keep the faster (warm caches).
    let b = builder();
    let total_cycles = 4_000u64;
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        b.run_with(RunOptions::new()).expect("static experiment config");
        best = best.min(t.elapsed().as_secs_f64());
    }
    let cycles_per_sec = total_cycles as f64 / best;

    // 2. Parallel-engine scaling on a quick sweep: sequential reference,
    // then one pooled run per worker count. Pools wider than the machine
    // are still timed (the bit-identity assertion is load-bearing at any
    // width) but their rows are flagged `undersubscribed`: on a 1-core
    // runner a "4-worker speedup" is pure scheduler noise, and the gate
    // must not mistake its wobble for a perf trajectory.
    let machine = std::thread::available_parallelism().map_or(1, usize::from);
    let rates = quick_rates();
    let t = Instant::now();
    let sequential = b
        .sweep_with(&rates, SweepOptions::new().threads(1))
        .expect("static experiment config");
    let seq_secs = t.elapsed().as_secs_f64();
    let mut table = Vec::new();
    let mut headline_secs = f64::NAN;
    for &threads in &SWEEP_THREADS {
        let t = Instant::now();
        let pooled = b
            .sweep_with(&rates, SweepOptions::new().threads(threads))
            .expect("static experiment config");
        let par_secs = t.elapsed().as_secs_f64();
        assert_eq!(
            sequential, pooled,
            "{threads}-worker sweep must be bit-identical to sequential"
        );
        if threads == HEADLINE_THREADS {
            headline_secs = par_secs;
        }
        table.push((threads, par_secs, seq_secs / par_secs));
    }
    assert!(headline_secs.is_finite(), "headline pool size must be in SWEEP_THREADS");

    // 3. Sentinel overhead: the headline pooled sweep with every invariant
    // audited. The sentinel only observes, so the curve must not move.
    // Plain and audited runs are *interleaved* (plain, audited, plain,
    // audited; best of each) because shared runners drift by more than
    // the audit cost over the seconds a sweep takes — comparing an
    // audited run against a plain run measured half a minute earlier
    // reports the machine's mood, not the sentinel's price.
    // Best-of-4 per side: single sweeps on this box scatter by ±35%, and
    // noise only ever adds time, so the minimum over more interleaved
    // samples converges on the true cost where best-of-2 still carries
    // tens of points of jitter into the ratio.
    let mut plain_secs = headline_secs;
    let mut audited_secs = f64::INFINITY;
    for _ in 0..4 {
        let t = Instant::now();
        let plain = b
            .sweep_with(&rates, SweepOptions::new().threads(HEADLINE_THREADS))
            .expect("static experiment config");
        plain_secs = plain_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(sequential, plain, "pooled sweep must stay bit-identical");
        let t = Instant::now();
        let audited = b
            .sweep_with(
                &rates,
                SweepOptions::new().threads(HEADLINE_THREADS).sentinel(true),
            )
            .expect("sentinel must stay quiet on a healthy sweep");
        audited_secs = audited_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(
            sequential, audited,
            "sentinel-on sweep must be bit-identical to the plain sweep"
        );
    }
    let overhead = audited_secs / plain_secs - 1.0;
    // The extra plain runs are more samples of the headline config; let
    // them tighten both the gated number and its table row.
    let headline_secs = plain_secs;
    for row in &mut table {
        if row.0 == HEADLINE_THREADS {
            *row = (row.0, headline_secs, seq_secs / headline_secs);
        }
    }

    // 4. Active-set scheduler payoff at low load: far from saturation most
    // routers are idle most cycles, which is exactly what the scheduler
    // skips. The dense loop is the reference; results must not move.
    let low_load = 0.02;
    let lb = builder().injection_rate(low_load).measurement(10_000);
    let timed = |scheduler: Scheduler| {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..2 {
            let t = Instant::now();
            report = Some(
                lb.run_with(RunOptions::new().scheduler(scheduler))
                    .expect("static experiment config"),
            );
            best = best.min(t.elapsed().as_secs_f64());
        }
        (best, report.expect("two timed runs"))
    };
    let (dense_secs, dense_report) = timed(Scheduler::Dense);
    let (active_secs, active_report) = timed(Scheduler::Active);
    assert_eq!(
        dense_report, active_report,
        "active-set scheduler must be bit-identical to the dense loop"
    );
    let sched_speedup = dense_secs / active_secs;

    // 5. Ensemble engine with a warm snapshot cache. The cold pass fills
    // the cache (and proves the lanes bit-identical to the sequential
    // sweep); the timed warm pass restores every lane's post-warmup state,
    // so each lane is credited warmup + measurement cycles while only
    // simulating the measurement window. On a single-CPU runner that
    // credited/simulated gap — not parallelism — is where the per-lane
    // throughput gain over `single_thread.cycles_per_sec` comes from,
    // which is why the transparency fields spell both cycle counts out.
    let snapdir =
        std::env::temp_dir().join(format!("footprint-perf-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapdir);
    let ens_warmup = 2_000u64;
    let ens_measure = 2_000u64;
    let eb = builder().warmup(ens_warmup).measurement(ens_measure);
    let erates = [0.05, 0.10, 0.15, 0.20];
    let lanes = erates.len();
    let ens_seq = eb
        .sweep_with(&erates, SweepOptions::new().threads(1))
        .expect("static experiment config");
    let cold = eb
        .sweep_with(
            &erates,
            SweepOptions::new()
                .threads(1)
                .ensemble(lanes)
                .snapshot_cache(&snapdir),
        )
        .expect("static experiment config");
    assert_eq!(
        ens_seq, cold,
        "cold ensemble sweep must be bit-identical to the sequential sweep"
    );
    let mut ens_secs = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let warm = eb
            .sweep_with(
                &erates,
                SweepOptions::new()
                    .threads(1)
                    .ensemble(lanes)
                    .snapshot_cache(&snapdir),
            )
            .expect("static experiment config");
        ens_secs = ens_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(
            ens_seq, warm,
            "warm ensemble sweep must be bit-identical to the sequential sweep"
        );
    }
    let credited_cycles = (ens_warmup + ens_measure) * lanes as u64;
    let simulated_cycles = ens_measure * lanes as u64;
    // Credited cycles per second of each lane's share of the wall clock
    // (equivalently: total credited cycles over the whole wall clock).
    let per_lane = credited_cycles as f64 / ens_secs;
    let ens_vs_single = per_lane / cycles_per_sec;

    // 6. Warm-start cache in isolation: one run cold (miss + store, so the
    // snapshot serialization cost is on the books) against the same run
    // warm (hit + restore). Reports are asserted identical — the speedup
    // is free only because the numbers cannot move.
    let hitdir =
        std::env::temp_dir().join(format!("footprint-perf-hit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&hitdir);
    let hb = builder().warmup(ens_warmup).measurement(ens_measure);
    let t = Instant::now();
    let cold_report = hb
        .run_with(RunOptions::new().snapshot_cache(&hitdir))
        .expect("static experiment config");
    let cold_secs = t.elapsed().as_secs_f64();
    let mut hit_secs = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let warm_report = hb
            .run_with(RunOptions::new().snapshot_cache(&hitdir))
            .expect("static experiment config");
        hit_secs = hit_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(
            cold_report, warm_report,
            "a snapshot-cache hit must report bit-identically to the cold run"
        );
    }
    let hit_speedup = cold_secs / hit_secs;
    let _ = std::fs::remove_dir_all(&snapdir);
    let _ = std::fs::remove_dir_all(&hitdir);

    // Gate-read fields stay ahead of the nested `by_threads` array: the
    // gate's string surgery scopes a section to the text before its first
    // closing brace.
    let by_threads = table
        .iter()
        .map(|(n, secs, speedup)| {
            // An undersubscribed pool's "speedup" is scheduler noise, so
            // the row omits the field entirely rather than publishing a
            // number that looks like a measurement.
            if *n > machine {
                format!(
                    "      {{ \"threads\": {n}, \"parallel_secs\": {secs:.4}, \"undersubscribed\": true }}"
                )
            } else {
                format!(
                    "      {{ \"threads\": {n}, \"parallel_secs\": {secs:.4}, \"speedup\": {speedup:.2}, \"undersubscribed\": false }}"
                )
            }
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let headline_speedup = seq_secs / headline_secs;
    let json = format!(
        "{{\n  \"single_thread\": {{\n    \"simulated_cycles\": {total_cycles},\n    \
         \"wall_secs\": {best:.4},\n    \"cycles_per_sec\": {cycles_per_sec:.0}\n  }},\n  \
         \"sweep\": {{\n    \"rates\": {},\n    \"sequential_secs\": {seq_secs:.4},\n    \
         \"parallel_secs_4t\": {headline_secs:.4},\n    \"speedup\": {headline_speedup:.2},\n    \
         \"machine_threads\": {machine},\n    \"bit_identical\": true,\n    \
         \"by_threads\": [\n{by_threads}\n    ]\n  }},\n  \
         \"sentinel\": {{\n    \"audited_secs\": {audited_secs:.4},\n    \
         \"overhead\": {overhead:.4},\n    \"budget\": 0.15\n  }},\n  \
         \"scheduler\": {{\n    \"load\": {low_load},\n    \
         \"dense_secs\": {dense_secs:.4},\n    \"active_secs\": {active_secs:.4},\n    \
         \"speedup\": {sched_speedup:.2},\n    \"bit_identical\": true\n  }},\n  \
         \"ensemble\": {{\n    \"lanes\": {lanes},\n    \
         \"cycles_per_sec_per_lane\": {per_lane:.0},\n    \
         \"per_lane_vs_single_thread\": {ens_vs_single:.2},\n    \
         \"wall_secs\": {ens_secs:.4},\n    \
         \"credited_cycles\": {credited_cycles},\n    \
         \"simulated_cycles\": {simulated_cycles},\n    \
         \"warm\": true,\n    \"bit_identical\": true\n  }},\n  \
         \"snapshot\": {{\n    \"cold_secs\": {cold_secs:.4},\n    \
         \"hit_secs\": {hit_secs:.4},\n    \"hit_speedup\": {hit_speedup:.2},\n    \
         \"bit_identical\": true\n  }}\n}}\n",
        rates.len(),
    );
    let path = std::env::var("FOOTPRINT_BENCH_OUT").unwrap_or_else(|_| "BENCH_sim.json".into());
    std::fs::write(&path, &json).expect("write benchmark report");
    println!("single-thread: {cycles_per_sec:.0} simulated cycles/sec ({best:.2}s for {total_cycles} cycles)");
    println!(
        "sweep ({} rates, {machine} hardware thread(s)): sequential {seq_secs:.2}s",
        rates.len()
    );
    for (n, secs, speedup) in &table {
        let note = if *n > machine { " (undersubscribed — speedup is noise)" } else { "" };
        println!("  {n} worker(s): {secs:.2}s → {speedup:.2}x{note}");
    }
    println!(
        "sentinel: audited sweep {audited_secs:.2}s → {:.1}% overhead (budget 15%)",
        overhead * 100.0
    );
    println!(
        "scheduler (load {low_load}): dense {dense_secs:.2}s, active {active_secs:.2}s → {sched_speedup:.2}x"
    );
    println!(
        "ensemble ({lanes} lanes, warm): {credited_cycles} credited / {simulated_cycles} simulated \
         cycles in {ens_secs:.2}s → {per_lane:.0} cycles/sec/lane ({ens_vs_single:.2}x single-thread)"
    );
    println!(
        "snapshot: cold {cold_secs:.2}s, hit {hit_secs:.2}s → {hit_speedup:.2}x warm-start speedup"
    );
    println!("wrote {path}");
}
