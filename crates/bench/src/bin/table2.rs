//! Table 2: the network simulation configuration, printed from the live
//! defaults so documentation can never drift from the code.

use footprint_core::SimConfig;
use footprint_stats::Table;

fn main() {
    let cfg = SimConfig::paper_default();
    println!("Table 2 — network simulation configuration (defaults in bold in the paper)\n");
    let mut t = Table::new(["parameter", "value"]);
    t.row([
        "Network topology".to_string(),
        format!("4x4, **{}**, 16x16 2D meshes", cfg.topology),
    ]);
    t.row([
        "Routing algorithms".to_string(),
        "**Footprint**, DBAR, Odd-Even, DOR, DBAR+XORDET, Odd-Even+XORDET, DOR+XORDET".to_string(),
    ]);
    t.row([
        "Virtual channels".to_string(),
        format!(
            "2, 4, 8, **{}**, 16 VCs per physical channel; buffer depth {}",
            cfg.num_vcs, cfg.vc_buffer_depth
        ),
    ]);
    t.row([
        "Traffic patterns".to_string(),
        "**Uniform random**, transpose, shuffle, hotspot, PARSEC-like traces".to_string(),
    ]);
    t.row([
        "Packet size".to_string(),
        "**single-flit**, {1..6}-flit uniformly distributed".to_string(),
    ]);
    t.row([
        "Flow control".to_string(),
        "credit-based, wormhole".to_string(),
    ]);
    t.row([
        "Allocators".to_string(),
        "priority-based VC allocator, round-robin switch allocator".to_string(),
    ]);
    t.row([
        "Speedup".to_string(),
        format!("internal speedup = {}.0", cfg.speedup),
    ]);
    println!("{}", t.render());
}
