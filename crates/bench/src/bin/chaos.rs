//! Chaos campaign: seeded Monte-Carlo fault injection across every
//! fabric × algorithm pair.
//!
//! Each trial draws a deterministic [`FaultPlan`] from one of four
//! scenario families and runs a whole-run-measured, drained simulation
//! under the Retry recovery policy:
//!
//! * `random_cuts`    — duplex link cuts chosen uniformly from the
//!   fabric's edges ([`FaultPlan::random_link_faults`]).
//! * `dateline`       — cuts biased onto wraparound edges
//!   ([`FaultPlan::random_link_faults_biased`]); wrapping fabrics only.
//!   These trials are expected to trip the wrap-safety check — the run is
//!   first attempted normally so the typed [`RunError::EscapeCompromised`]
//!   verdict is exercised, then retried in degraded-escape mode.
//! * `router_burst`   — two routers fail in a staggered burst; one
//!   recovers mid-run.
//! * `repair`         — a mid-run duplex cut with a scheduled repair, the
//!   scenario that exercises time-to-recover and backlog re-admission.
//!
//! Every trial is deterministic in `(fabric, family, trial)`: the
//! campaign is a fixed experiment, not a fuzzer — rerunning it reproduces
//! the CSV bit for bit. Results land in `results/chaos_campaign.csv`:
//! delivery accounting, retry totals, partition-epoch counts,
//! time-to-recover and worst-window availability per trial.
//!
//! `FOOTPRINT_QUICK=1` shortens the phases and halves the trial count.

use std::fmt::Write as _;

use footprint_bench::results_dir;
use footprint_core::{
    JobSet, RoutingSpec, RunError, RunOptions, RunReport, SimulationBuilder, TrafficSpec,
    UnreachablePolicy,
};
use footprint_topology::{AnyTopology, FaultEvent, FaultPlan, Mesh, NodeId, Ring, Torus};

const ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

const FABRICS: [&str; 3] = ["mesh:8x8", "torus:8x8", "ring:16"];

const FAMILIES: [&str; 4] = ["random_cuts", "dateline", "router_burst", "repair"];

fn topo_of(fabric: &str) -> AnyTopology {
    match fabric {
        "mesh:8x8" => Mesh::square(8).into(),
        "torus:8x8" => Torus::square(8).into(),
        "ring:16" => Ring::new(16).into(),
        other => panic!("unknown fabric {other}"),
    }
}

/// splitmix64: the repo's standard seed-mixing finalizer, reused here so
/// trial parameters are decorrelated without any global RNG state.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic plan for one `(fabric, family, trial)` cell. `None`
/// when the family does not apply to the fabric (dateline cuts on a mesh).
fn plan_for(fabric: &str, family: &str, trial: u64) -> Option<FaultPlan> {
    let topo = topo_of(fabric);
    let nodes = topo.len() as u64;
    let seed = mix(trial ^ mix(fabric.len() as u64 ^ (family.len() as u64) << 8));
    match family {
        "random_cuts" => Some(FaultPlan::random_link_faults(topo, 2, seed)),
        "dateline" => FaultPlan::random_link_faults_biased(topo, 1, 1, seed).ok(),
        "router_burst" => {
            let a = NodeId((mix(seed) % nodes) as u16);
            let mut b = NodeId((mix(seed ^ 1) % nodes) as u16);
            if b == a {
                b = NodeId(((b.0 as u64 + 1) % nodes) as u16);
            }
            Some(
                FaultPlan::new()
                    .with(FaultEvent::router_down(a, 100))
                    .with(FaultEvent::router_down(b, 200).repaired_at(700)),
            )
        }
        "repair" => {
            // A mid-run duplex cut on a random East edge, healed later.
            let mut n = NodeId((mix(seed ^ 2) % nodes) as u16);
            let topo = topo_of(fabric);
            while topo.neighbor(n, footprint_topology::Direction::East).is_none() {
                n = NodeId(((n.0 as u64 + 1) % nodes) as u16);
            }
            Some(FaultPlan::new().with(
                FaultEvent::link_down(n, footprint_topology::Direction::East, 150)
                    .repaired_at(650),
            ))
        }
        other => panic!("unknown family {other}"),
    }
}

fn builder(fabric: &str, spec: RoutingSpec, measurement: u64) -> SimulationBuilder {
    let base = match fabric {
        "mesh:8x8" => SimulationBuilder::mesh(8).vcs(10),
        "torus:8x8" => SimulationBuilder::torus(8).vcs(10),
        "ring:16" => SimulationBuilder::ring(16).vcs(6),
        other => panic!("unknown fabric {other}"),
    };
    base.routing(spec)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.08)
        .warmup(0)
        .measurement(measurement)
        .drain(2 * measurement)
        .seed(0xC4A0_5EED)
}

struct Row {
    fabric: &'static str,
    family: &'static str,
    algo: &'static str,
    trial: u64,
    events: usize,
    status: &'static str,
    severed_pairs: usize,
    masked_wrap_channels: usize,
    report: Option<RunReport>,
}

fn run_trial(
    fabric: &'static str,
    family: &'static str,
    spec: RoutingSpec,
    trial: u64,
    plan: FaultPlan,
    measurement: u64,
) -> Row {
    // Retry is the recovery policy for the family with scheduled repairs
    // (the repair re-admits the parked backlog, so the books close).
    // Against permanent cuts a retry is just a slow drop that would leave
    // the backlog parked past the drain budget, so those families drop
    // unreachable packets at the source.
    let policy = if family == "repair" {
        UnreachablePolicy::Retry {
            max_attempts: 8,
            backoff: 32,
        }
    } else {
        UnreachablePolicy::Drop
    };
    let options = |degraded: bool| {
        RunOptions::new()
            .faults(plan.clone())
            .on_unreachable(policy)
            .degraded_escape(degraded)
            .watchdog(20_000)
    };
    let mut row = Row {
        fabric,
        family,
        algo: spec.name(),
        trial,
        events: plan.events().len(),
        status: "ok",
        severed_pairs: 0,
        masked_wrap_channels: 0,
        report: None,
    };
    // Mid-run router deaths can wedge wormholes that were already in
    // flight through the failed router; those packets are neither
    // delivered nor dropped, and uniform background traffic keeps the
    // global-progress watchdog from tripping. Such trials are recorded as
    // `inflight_wedged` rather than asserted away — surviving them
    // gracefully is exactly what the campaign measures.
    let classify = |report: &RunReport| {
        if report.faults.fully_accounted() {
            "ok"
        } else {
            "inflight_wedged"
        }
    };
    match builder(fabric, spec, measurement).run_with(options(false)) {
        Ok(report) => {
            row.status = classify(&report);
            row.report = Some(report);
        }
        Err(RunError::Stalled(_)) => row.status = "stalled",
        Err(RunError::EscapeCompromised {
            severed,
            masked_wrap_channels,
        }) => {
            // The typed verdict is the result of record; the degraded-mode
            // rerun documents what delivery survives under watchdog cover.
            row.severed_pairs = severed.len();
            row.masked_wrap_channels = masked_wrap_channels;
            match builder(fabric, spec, measurement).run_with(options(true)) {
                Ok(report) => {
                    row.status = if report.faults.fully_accounted() {
                        "degraded_ok"
                    } else {
                        "degraded_wedged"
                    };
                    row.report = Some(report);
                }
                Err(RunError::Stalled(_)) => row.status = "degraded_stalled",
                Err(e) => panic!("degraded rerun must not be refused: {e}"),
            }
        }
        Err(e) => panic!("chaos trial configuration must be valid: {e}"),
    }
    row
}

fn main() {
    let quick = std::env::var_os("FOOTPRINT_QUICK").is_some();
    let (trials, measurement) = if quick { (2u64, 500) } else { (5u64, 1_500) };

    let mut jobs = JobSet::new();
    let mut scheduled = 0usize;
    for fabric in FABRICS {
        for family in FAMILIES {
            for trial in 0..trials {
                let Some(plan) = plan_for(fabric, family, trial) else {
                    continue; // dateline cuts have no target on a mesh
                };
                for spec in ALGOS {
                    let plan = plan.clone();
                    scheduled += 1;
                    jobs.push(move || run_trial(fabric, family, spec, trial, plan, measurement));
                }
            }
        }
    }
    let rows = jobs.run();
    assert_eq!(rows.len(), scheduled);

    let mut csv = String::from(
        "fabric,family,algorithm,trial,events,status,generated,delivered,dropped,retries,\
         delivered_frac,partition_epochs,max_components,ttr_mean,min_availability,\
         severed_pairs,masked_wrap_channels\n",
    );
    let mut degraded = 0usize;
    let mut stalled = 0usize;
    for r in &rows {
        match r.status {
            "degraded_ok" | "degraded_stalled" => degraded += 1,
            "stalled" => stalled += 1,
            _ => {}
        }
        if let Some(report) = &r.report {
            let f = &report.faults;
            let frac = if f.generated() == 0 {
                1.0
            } else {
                f.delivered() as f64 / f.generated() as f64
            };
            writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{},{},{frac:.4},{},{},{},{},{},{}",
                r.fabric,
                r.family,
                r.algo,
                r.trial,
                r.events,
                r.status,
                f.generated(),
                f.delivered(),
                f.dropped(),
                f.retry_attempts(),
                report.partitions.epochs.len(),
                report.partitions.max_components(),
                report
                    .recovery
                    .mean_ttr()
                    .map_or(String::new(), |t| format!("{t:.1}")),
                report
                    .recovery
                    .min_availability()
                    .map_or(String::new(), |a| format!("{a:.4}")),
                r.severed_pairs,
                r.masked_wrap_channels,
            )
            .unwrap();
        } else {
            writeln!(
                csv,
                "{},{},{},{},{},{},,,,,,,,,,{},{}",
                r.fabric,
                r.family,
                r.algo,
                r.trial,
                r.events,
                r.status,
                r.severed_pairs,
                r.masked_wrap_channels,
            )
            .unwrap();
        }
    }
    let path = results_dir()
        .expect("results/ must be writable")
        .join("chaos_campaign.csv");
    std::fs::write(&path, &csv).expect("results/ must be writable");

    println!("## Chaos campaign — {} trials", rows.len());
    println!(
        "{:<10} {:<13} {:<12} {:>6} {:>10} {:>8} {:>7}",
        "fabric", "family", "algorithm", "trial", "status", "dropped", "epochs"
    );
    for r in &rows {
        let (dropped, epochs) = r.report.as_ref().map_or((String::from("-"), 0), |rep| {
            (rep.faults.dropped().to_string(), rep.partitions.epochs.len())
        });
        println!(
            "{:<10} {:<13} {:<12} {:>6} {:>10} {:>8} {:>7}",
            r.fabric, r.family, r.algo, r.trial, r.status, dropped, epochs
        );
    }
    println!(
        "# chaos: {} trials, {} degraded-escape, {} stalled",
        rows.len(),
        degraded,
        stalled
    );
    println!("# chaos: wrote {}", path.display());
}
