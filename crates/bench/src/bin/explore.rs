//! Interactive experiment runner: simulate any (algorithm, pattern, rate,
//! mesh, VCs) point from the command line.
//!
//! ```bash
//! cargo run --release -p footprint-bench --bin explore -- \
//!     --routing footprint --traffic shuffle --rate 0.45 --mesh 8 --vcs 10
//! ```

use footprint_core::{PacketSize, RoutingSpec, RunOptions, SimulationBuilder, TrafficSpec};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    routing: RoutingSpec,
    traffic: TrafficSpec,
    rate: f64,
    mesh: u16,
    vcs: usize,
    warmup: u64,
    measurement: u64,
    seed: u64,
    variable_size: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            routing: RoutingSpec::Footprint,
            traffic: TrafficSpec::UniformRandom,
            rate: 0.2,
            mesh: 8,
            vcs: 10,
            warmup: 2_000,
            measurement: 4_000,
            seed: 1,
            variable_size: false,
        }
    }
}

fn parse_traffic(s: &str) -> Result<TrafficSpec, String> {
    Ok(match s {
        "uniform" => TrafficSpec::UniformRandom,
        "transpose" => TrafficSpec::Transpose,
        "shuffle" => TrafficSpec::Shuffle,
        "bit-complement" => TrafficSpec::BitComplement,
        "bit-reverse" => TrafficSpec::BitReverse,
        "tornado" => TrafficSpec::Tornado,
        "hotspot" => TrafficSpec::PAPER_HOTSPOT,
        other => return Err(format!("unknown traffic pattern `{other}`")),
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--routing" | "-r" => {
                args.routing = value("--routing")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--traffic" | "-t" => args.traffic = parse_traffic(&value("--traffic")?)?,
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "rate must be a number".to_string())?;
            }
            "--mesh" | "-k" => {
                args.mesh = value("--mesh")?
                    .parse()
                    .map_err(|_| "mesh must be an integer radix".to_string())?;
            }
            "--vcs" | "-v" => {
                args.vcs = value("--vcs")?
                    .parse()
                    .map_err(|_| "vcs must be an integer".to_string())?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "warmup must be an integer".to_string())?;
            }
            "--measurement" => {
                args.measurement = value("--measurement")?
                    .parse()
                    .map_err(|_| "measurement must be an integer".to_string())?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "seed must be an integer".to_string())?;
            }
            "--variable-size" => args.variable_size = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn print_help() {
    println!(
        "explore — run one NoC simulation point\n\n\
         USAGE: explore [--routing ALGO] [--traffic PATTERN] [--rate R]\n\
                 [--mesh K] [--vcs V] [--warmup N] [--measurement N]\n\
                 [--seed S] [--variable-size]\n\n\
         ALGO:    footprint | dbar | odd-even | dor | dbar+xordet |\n\
                  odd-even+xordet | dor+xordet | random-minimal\n\
         PATTERN: uniform | transpose | shuffle | bit-complement |\n\
                  bit-reverse | tornado | hotspot"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let builder = SimulationBuilder::mesh(args.mesh)
        .vcs(args.vcs)
        .routing(args.routing)
        .traffic(args.traffic)
        .injection_rate(args.rate)
        .packet_size(if args.variable_size {
            PacketSize::PAPER_VARIABLE
        } else {
            PacketSize::SINGLE
        })
        .warmup(args.warmup)
        .measurement(args.measurement)
        .seed(args.seed);
    match builder.run_with(RunOptions::new()) {
        Ok(report) => {
            println!(
                "{} x {} @ {:.3} on {}x{} with {} VCs (seed {}):",
                args.routing.name(),
                args.traffic,
                args.rate,
                args.mesh,
                args.mesh,
                args.vcs,
                args.seed
            );
            println!("  {report}");
            println!(
                "  purity {:.3}, HoL degree {:.2}, delivery ratio {:.3}",
                report.mean_purity,
                report.hol_degree,
                report.delivery_ratio()
            );
            for (c, s) in report.classes.iter().enumerate() {
                if s.ejected_packets > 0 && report.classes.len() > 1 {
                    println!(
                        "  class {c}: latency {:.1}, throughput {:.3}",
                        s.mean_latency, s.throughput
                    );
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
