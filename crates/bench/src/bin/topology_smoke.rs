//! Topology smoke test (run by CI).
//!
//! Three checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Audited torus runs** — every wrap-capable paper algorithm
//!    completes a sentinel-audited run on a 4×4 torus and an 8-node ring
//!    with the books closing (every window-generated packet ejected).
//!
//! 2. **Worker-count invariance** — a Footprint sweep on the torus is
//!    bit-identical on 1 and 4 workers (per-point derived seeds must not
//!    interact with dateline escape classes).
//!
//! 3. **Mesh golden unchanged** — the 4×4 mesh "footprint" configuration
//!    from `tests/layout_golden.rs` still reproduces its pinned
//!    object-layout fingerprint on both schedulers, proving the topology
//!    generalisation left the mesh datapath bit-identical.
//!
//! Writes `results/topology_smoke.txt`; every passed check appends a
//! `TOPOLOGY` line CI greps for.

use std::fmt::Write as _;
use std::process::ExitCode;

use footprint_bench::results_dir;
use footprint_core::{
    RoutingSpec, RunOptions, RunReport, Scheduler, SimulationBuilder, SweepOptions,
};

/// Algorithms whose deadlock-freedom argument extends to wrapping fabrics.
const WRAP_ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The erasure from `tests/layout_golden.rs`: report fields added after
/// the object-layout capture (tenants, topology, and the 0.9.0
/// partitions/recovery suffix) are stripped before hashing.
fn golden_hash(report: &RunReport) -> u64 {
    let debug = format!("{report:?}");
    let stripped = match debug.find(", partitions: ") {
        Some(i) => format!("{} }}", &debug[..i]),
        None => debug,
    };
    fnv1a(
        stripped
            .replace(", tenants: []", "")
            .replace(", topology: \"mesh:4x4\"", "")
            .as_bytes(),
    )
}

/// The pinned "footprint" fingerprint from the layout-golden matrix.
const MESH_FOOTPRINT_GOLDEN: u64 = 0xca246d83340da0ec;

fn wrap_builder(kind: &str) -> SimulationBuilder {
    let base = match kind {
        "torus:4x4" => SimulationBuilder::torus(4),
        "ring:8" => SimulationBuilder::ring(8),
        other => panic!("unknown fabric {other}"),
    };
    base.vcs(4)
        .warmup(200)
        .measurement(400)
        .drain(2_000)
        .injection_rate(0.10)
        .seed(7)
}

fn audited_books(out: &mut String) -> Result<(), String> {
    for fabric in ["torus:4x4", "ring:8"] {
        for spec in WRAP_ALGOS {
            let report = wrap_builder(fabric)
                .routing(spec)
                .run_with(RunOptions::new().sentinel(true).watchdog(20_000))
                .map_err(|e| format!("{fabric}/{}: {e}", spec.name()))?;
            if report.latency.ejected_packets == 0 {
                return Err(format!("{fabric}/{}: nothing delivered", spec.name()));
            }
            if report.latency.ejected_packets < report.latency.generated_packets {
                return Err(format!(
                    "{fabric}/{}: {} generated vs {} ejected after drain",
                    spec.name(),
                    report.latency.generated_packets,
                    report.latency.ejected_packets
                ));
            }
            let _ = writeln!(
                out,
                "TOPOLOGY books {fabric} {} generated={} ejected={}",
                spec.name(),
                report.latency.generated_packets,
                report.latency.ejected_packets
            );
        }
    }
    Ok(())
}

fn sweep_invariance(out: &mut String) -> Result<(), String> {
    let sweep = |threads: usize| {
        SimulationBuilder::torus(4)
            .vcs(4)
            .warmup(150)
            .measurement(300)
            .drain(1_000)
            .seed(23)
            .routing(RoutingSpec::Footprint)
            .sweep_with(&[0.05, 0.15, 0.25], SweepOptions::new().threads(threads))
            .map_err(|e| format!("torus sweep ({threads} threads): {e}"))
    };
    let one = format!("{:?}", sweep(1)?);
    let four = format!("{:?}", sweep(4)?);
    if one != four {
        return Err("torus sweep: 1-thread vs 4-thread results diverged".into());
    }
    let _ = writeln!(out, "TOPOLOGY sweep torus:4x4 1-vs-4-thread bit-identical");
    Ok(())
}

fn mesh_golden(out: &mut String) -> Result<(), String> {
    for scheduler in [Scheduler::Dense, Scheduler::Active] {
        let report = SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .seed(3)
            .injection_rate(0.15)
            .drain(500)
            .routing(RoutingSpec::Footprint)
            .run_with(RunOptions::new().scheduler(scheduler).watchdog(10_000))
            .map_err(|e| format!("mesh golden run ({scheduler:?}): {e}"))?;
        let h = golden_hash(&report);
        if h != MESH_FOOTPRINT_GOLDEN {
            return Err(format!(
                "mesh golden ({scheduler:?}): fingerprint {h:#018x} != pinned {MESH_FOOTPRINT_GOLDEN:#018x}"
            ));
        }
    }
    let _ = writeln!(
        out,
        "TOPOLOGY golden mesh:4x4 footprint fingerprint {MESH_FOOTPRINT_GOLDEN:#018x} intact"
    );
    Ok(())
}

fn main() -> ExitCode {
    type Check = fn(&mut String) -> Result<(), String>;
    let mut out = String::new();
    let checks: [(&str, Check); 3] = [
        ("audited torus/ring books", audited_books),
        ("torus sweep worker invariance", sweep_invariance),
        ("mesh datapath golden", mesh_golden),
    ];
    for (name, check) in checks {
        match check(&mut out) {
            Ok(()) => println!("topology_smoke: {name} ok"),
            Err(e) => {
                eprintln!("topology_smoke: {name} FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = match results_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("topology_smoke: results/ not writable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = dir.join("topology_smoke.txt");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("topology_smoke: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    print!("{out}");
    ExitCode::SUCCESS
}
