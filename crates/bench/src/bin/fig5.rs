//! Figure 5: latency-throughput comparison of all seven routing algorithms
//! on uniform random, transpose and shuffle traffic with single-flit
//! packets (8×8 mesh, 10 VCs).

use footprint_bench::{
    default_rates, observe_from_env, observed_run, paper_builder, phases_from_env, print_artifacts,
    print_curves, CurveSet,
};
use footprint_core::TrafficSpec;
use footprint_routing::RoutingSpec;
use footprint_stats::Table;

fn main() {
    let phases = phases_from_env();
    let rates = default_rates();
    // All pattern × algorithm curves go into one job set: the full figure
    // is a single flat batch of (curve, rate) simulations.
    let mut set = CurveSet::new(&rates);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for spec in RoutingSpec::PAPER_SET {
            set.add(paper_builder(spec, traffic, phases));
        }
    }
    let mut curves = set.run().into_iter();
    let mut summary = Table::new(["pattern", "algorithm", "saturation throughput"]);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        let block: Vec<_> = RoutingSpec::PAPER_SET
            .iter()
            .map(|_| curves.next().expect("one curve per queued spec"))
            .collect();
        print_curves(
            &format!("Figure 5 ({traffic}) — single-flit packets, 8x8, 10 VCs"),
            &block,
        );
        for c in &block {
            summary.row([
                traffic.name(),
                c.label.clone(),
                format!("{:.3}", c.saturation_throughput(3.0).unwrap_or(0.0)),
            ]);
        }
    }
    println!("{}", summary.render());

    // With FOOTPRINT_OBSERVE set, rerun one representative mid-load point
    // per pattern (Footprint routing) with the full observability stack and
    // drop occupancy timelines + flit-event traces under results/.
    if let Some(opts) = observe_from_env() {
        for traffic in TrafficSpec::PAPER_PATTERNS {
            let label = format!("fig5_{}_footprint", traffic.name());
            let builder =
                paper_builder(RoutingSpec::Footprint, traffic, phases).injection_rate(0.30);
            let (report, paths) =
                observed_run(&label, &builder, opts).expect("results/ must be writable");
            println!("# {label}: {report}");
            print_artifacts(&label, &paths);
        }
    }
}
