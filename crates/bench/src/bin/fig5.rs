//! Figure 5: latency-throughput comparison of all seven routing algorithms
//! on uniform random, transpose and shuffle traffic with single-flit
//! packets (8×8 mesh, 10 VCs).

use footprint_bench::{default_rates, phases_from_env, print_curves, sweep_curve};
use footprint_core::TrafficSpec;
use footprint_routing::RoutingSpec;
use footprint_stats::Table;

fn main() {
    let phases = phases_from_env();
    let rates = default_rates();
    let mut summary = Table::new(["pattern", "algorithm", "saturation throughput"]);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        let mut curves = Vec::new();
        for spec in RoutingSpec::PAPER_SET {
            curves.push(sweep_curve(spec, traffic, &rates, phases));
        }
        print_curves(
            &format!("Figure 5 ({traffic}) — single-flit packets, 8x8, 10 VCs"),
            &curves,
        );
        for c in &curves {
            summary.row([
                traffic.name(),
                c.label.clone(),
                format!("{:.3}", c.saturation_throughput(3.0).unwrap_or(0.0)),
            ]);
        }
    }
    println!("{}", summary.render());
}
