//! Fault sweep: latency-throughput curves for the paper's four headline
//! algorithms under 0, 1 and 2 injected link faults — on the 8×8 mesh,
//! the 8×8 torus, and the 16-node ring.
//!
//! The fault scenarios cut duplex links near the fabric's center (where
//! the damage to minimal-path diversity is largest on the 2-D fabrics):
//!
//! * `0 faults` — the baseline curve (empty [`FaultPlan`]).
//! * `1 fault`  — one grid link down from cycle 0 (n27↔n28 on the 2-D
//!   fabrics, n5↔n6 on the ring).
//! * `2 faults` — a second grid cut (n36↔n44, or n11↔n12 on the ring —
//!   which *partitions* the ring, so the curves document degraded-mode
//!   delivery on the two surviving arcs).
//!
//! All cuts are grid (non-wraparound) links, so every scenario passes the
//! wrap-safety check on the torus and ring without degraded-escape mode;
//! the dateline-cut regime is the chaos campaign's job (`chaos`).
//!
//! Adaptive algorithms route around the cuts and only drop the provably
//! unreachable pairs; DOR drops every pair whose XY path needs a dead hop.
//! Each point reports accepted throughput, mean latency and the drop
//! fraction; everything lands in `results/fault_sweep.csv` alongside the
//! stdout tables.
//!
//! `FOOTPRINT_QUICK=1` switches to the sparse rate axis and short phases.

use std::fmt::Write as _;

use footprint_bench::{
    default_rates, paper_builder, phases_from_env, quick_rates, results_dir, Phases,
};
use footprint_core::{
    JobSet, RoutingSpec, RunError, RunOptions, SimulationBuilder, TrafficSpec,
};
use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId};

/// Algorithms compared under faults: the paper's main adaptive trio plus
/// the oblivious baseline.
const ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

/// The swept fabrics. The mesh and torus share the 8×8 scale (and the
/// same center cuts); the ring gets 1-D cuts of its own.
const FABRICS: [&str; 3] = ["mesh:8x8", "torus:8x8", "ring:16"];

fn scenarios(fabric: &str) -> Vec<(&'static str, FaultPlan)> {
    let (one, two) = if fabric == "ring:16" {
        let one = FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
        let two = one
            .clone()
            .with(FaultEvent::link_down(NodeId(11), Direction::East, 0));
        (one, two)
    } else {
        let one = FaultPlan::new().with(FaultEvent::link_down(NodeId(27), Direction::East, 0));
        let two = one
            .clone()
            .with(FaultEvent::link_down(NodeId(36), Direction::North, 0));
        (one, two)
    };
    vec![
        ("0_faults", FaultPlan::new()),
        ("1_fault", one),
        ("2_faults", two),
    ]
}

/// One completed sweep point plus its fault accounting.
struct Row {
    fabric: &'static str,
    scenario: &'static str,
    faults: usize,
    algo: &'static str,
    offered: f64,
    outcome: Outcome,
}

enum Outcome {
    Done {
        accepted: f64,
        latency: f64,
        delivered: u64,
        dropped: u64,
        unreachable_pairs: usize,
    },
    /// The watchdog tripped (wedged wormholes past saturation with the
    /// escape path cut) — recorded, not fatal.
    Stalled,
}

fn run_point(
    builder: &SimulationBuilder,
    index: usize,
    rate: f64,
    plan: &FaultPlan,
) -> Outcome {
    let point = builder.sweep_point(index, rate);
    match point.run_with(RunOptions::new().faults(plan.clone()).watchdog(10_000)) {
        Ok(report) => Outcome::Done {
            accepted: report.latency.throughput,
            latency: report.latency.mean_latency,
            delivered: report.faults.delivered(),
            dropped: report.faults.dropped(),
            unreachable_pairs: report.faults.unreachable_pairs.len(),
        },
        Err(RunError::Stalled(_)) => Outcome::Stalled,
        Err(e) => panic!("fault sweep configuration must be valid: {e}"),
    }
}

fn main() {
    let phases = phases_from_env();
    let rates = if std::env::var_os("FOOTPRINT_QUICK").is_some() {
        quick_rates()
    } else {
        default_rates()
    };

    // One flat job set over every (fabric × scenario × algorithm × rate)
    // point, so the whole figure saturates the worker pool at once.
    let mut jobs = JobSet::new();
    for fabric in FABRICS {
        for (name, plan) in scenarios(fabric) {
            let faults = plan.events().len();
            for spec in ALGOS {
                let builder = fault_builder(fabric, spec, phases);
                for (index, &rate) in rates.iter().enumerate() {
                    let (plan, builder) = (plan.clone(), builder.clone());
                    jobs.push(move || Row {
                        fabric,
                        scenario: name,
                        faults,
                        algo: spec.name(),
                        offered: rate,
                        outcome: run_point(&builder, index, rate, &plan),
                    });
                }
            }
        }
    }
    let rows = jobs.run();

    let mut csv = String::from(
        "fabric,scenario,faults,algorithm,offered,accepted,latency,delivered,dropped,unreachable_pairs,status\n",
    );
    for r in &rows {
        match &r.outcome {
            Outcome::Done {
                accepted,
                latency,
                delivered,
                dropped,
                unreachable_pairs,
            } => writeln!(
                csv,
                "{},{},{},{},{:.3},{accepted:.4},{latency:.2},{delivered},{dropped},{unreachable_pairs},ok",
                r.fabric, r.scenario, r.faults, r.algo, r.offered
            )
            .unwrap(),
            Outcome::Stalled => writeln!(
                csv,
                "{},{},{},{},{:.3},,,,,,stalled",
                r.fabric, r.scenario, r.faults, r.algo, r.offered
            )
            .unwrap(),
        }
    }
    let path = results_dir()
        .expect("results/ must be writable")
        .join("fault_sweep.csv");
    std::fs::write(&path, &csv).expect("results/ must be writable");

    for fabric in FABRICS {
        for (name, plan) in scenarios(fabric) {
            println!(
                "## Fault sweep ({fabric}, {name}: {} link fault(s)) — uniform random",
                plan.events().len()
            );
            println!("{:<12} {:>8} {:>9} {:>9} {:>9} {:>6}", "algorithm", "offered", "accepted", "latency", "dropped", "pairs");
            for r in rows.iter().filter(|r| r.fabric == fabric && r.scenario == name) {
                match &r.outcome {
                    Outcome::Done {
                        accepted,
                        latency,
                        dropped,
                        unreachable_pairs,
                        ..
                    } => println!(
                        "{:<12} {:>8.3} {:>9.4} {:>9.2} {:>9} {:>6}",
                        r.algo, r.offered, accepted, latency, dropped, unreachable_pairs
                    ),
                    Outcome::Stalled => println!(
                        "{:<12} {:>8.3} {:>9} {:>9} {:>9} {:>6}",
                        r.algo, r.offered, "stalled", "-", "-", "-"
                    ),
                }
            }
            println!();
        }
    }
    println!("# fault_sweep: wrote {}", path.display());
}

fn fault_builder(fabric: &str, spec: RoutingSpec, phases: Phases) -> SimulationBuilder {
    // Whole-run measurement (warmup 0) with a drain phase, so the fault
    // accounting in each report satisfies `generated = delivered + dropped`.
    let base = match fabric {
        "mesh:8x8" => paper_builder(spec, TrafficSpec::UniformRandom, phases),
        "torus:8x8" => SimulationBuilder::torus(8)
            .vcs(10)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .warmup(phases.warmup)
            .measurement(phases.measurement)
            .seed(0x0F00),
        "ring:16" => SimulationBuilder::ring(16)
            .vcs(6)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .warmup(phases.warmup)
            .measurement(phases.measurement)
            .seed(0x0F00),
        other => panic!("unknown fabric {other}"),
    };
    base.warmup(0)
        .measurement(phases.warmup + phases.measurement)
        .drain(phases.measurement)
}
