//! §4.4: the implementation-cost model of Footprint routing.

use footprint_routing::cost::{
    ceil_log2, cost_in_flit_entries, footprint_storage_bits_per_port,
    footprint_storage_bits_per_router,
};
use footprint_stats::Table;

fn main() {
    println!("§4.4 — Footprint storage overhead\n");
    let mut t = Table::new([
        "mesh",
        "VCs",
        "bits/port",
        "bits/router (5 ports)",
        "flit entries @128b",
        "flit entries @256b",
    ]);
    for (nodes, label) in [(16usize, "4x4"), (64, "8x8"), (256, "16x16")] {
        for vcs in [2usize, 4, 8, 10, 16] {
            let bits = footprint_storage_bits_per_port(nodes, vcs);
            t.row([
                label.to_string(),
                vcs.to_string(),
                bits.to_string(),
                footprint_storage_bits_per_router(nodes, vcs, 5).to_string(),
                format!("{:.2}", cost_in_flit_entries(bits, 128)),
                format!("{:.2}", cost_in_flit_entries(bits, 256)),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Paper check: 8x8 mesh, 16 VCs → {} bits/port (paper: 132; owner register \
         log2(64)={} bits + 2 state bits per VC, idle counter log2(16)={} bits per port).",
        footprint_storage_bits_per_port(64, 16),
        ceil_log2(64),
        ceil_log2(16),
    );
}
