//! Fault-injection smoke test (run by CI).
//!
//! Three checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Faulted sweep determinism** — a small faulted sweep run at one and
//!    at four worker threads must produce bit-identical curves (the PR-1
//!    engine guarantee extended to fault plans).
//!
//! 2. **Accounting** — a whole-run-measured, drained faulted run must
//!    account for every generated packet as delivered or dropped, record
//!    the unreachable pairs, and (under [`UnreachablePolicy::Error`]) DOR
//!    must surface them as a typed [`RunError::Unreachable`]. The outcome
//!    lines land in `results/fault_smoke_outcome.txt`.
//!
//! 3. **Partition wedge** — a link is cut mid-stream under a saturating
//!    DOR flow, wedging the in-flight wormhole with no legal detour. The
//!    stall watchdog must trip with a well-formed diagnostic, written to
//!    `results/fault_smoke_stall.txt`, instead of the run spinning to its
//!    cycle limit.

use std::process::ExitCode;

use footprint_bench::results_dir;
use footprint_core::{
    RoutingSpec, RunError, RunOptions, SimulationBuilder, SweepOptions, TrafficSpec,
    UnreachablePolicy,
};
use footprint_sim::{FlowSet, Network, NullProbe, SimConfig, SingleFlow, StallWatchdog};
use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId};

/// The fault under test: the duplex link n5↔n6 on the 4×4 mesh, down
/// from cycle 0.
fn cut() -> FaultPlan {
    FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0))
}

fn quick_builder(spec: RoutingSpec) -> SimulationBuilder {
    SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(spec)
        .traffic(TrafficSpec::UniformRandom)
        .seed(0xFA57)
}

fn sweep_determinism() -> Result<(), String> {
    let rates = [0.05, 0.1, 0.15];
    let sweep = |threads: usize| {
        quick_builder(RoutingSpec::Footprint)
            .warmup(150)
            .measurement(400)
            .sweep_with(
                &rates,
                SweepOptions::new()
                    .faults(cut())
                    .threads(threads)
                    .watchdog(10_000),
            )
            .map_err(|e| format!("faulted sweep failed: {e}"))
    };
    let one = sweep(1)?;
    let four = sweep(4)?;
    if one != four {
        return Err("faulted sweep differs between 1 and 4 worker threads".into());
    }
    if one.points.len() != rates.len() {
        return Err(format!("expected {} sweep points", rates.len()));
    }
    Ok(())
}

fn accounting() -> Result<(), String> {
    let mut outcome = String::new();

    // Adaptive routing around the cut: full accounting, bounded losses.
    let report = quick_builder(RoutingSpec::Footprint)
        .injection_rate(0.15)
        .warmup(0)
        .measurement(800)
        .drain(2_000)
        .run_with(RunOptions::new().faults(cut()).watchdog(10_000))
        .map_err(|e| format!("faulted run failed: {e}"))?;
    let f = &report.faults;
    if !f.fully_accounted() {
        return Err(format!(
            "unaccounted packets: generated {} != delivered {} + dropped {}",
            f.generated(),
            f.delivered(),
            f.dropped()
        ));
    }
    if f.unreachable_pairs.is_empty() || f.dropped() == 0 {
        return Err("the cut produced no observable fault effects".into());
    }
    outcome.push_str(&format!(
        "FAULTED footprint: {} generated, {} delivered, {} dropped, {} unreachable pair(s)\n",
        f.generated(),
        f.delivered(),
        f.dropped(),
        f.unreachable_pairs.len()
    ));

    // DOR under the error policy: typed unreachability, not a wedge.
    match quick_builder(RoutingSpec::Dor)
        .injection_rate(0.15)
        .warmup(0)
        .measurement(800)
        .drain(2_000)
        .run_with(
            RunOptions::new()
                .faults(cut())
                .on_unreachable(UnreachablePolicy::Error)
                .watchdog(10_000),
        ) {
        Err(RunError::Unreachable(stats)) => {
            outcome.push_str(&format!(
                "UNREACHABLE dor: {} pair(s), {} packet(s) dropped\n",
                stats.unreachable_pairs.len(),
                stats.dropped()
            ));
        }
        Ok(_) => return Err("DOR completed despite unreachable pairs under Error policy".into()),
        Err(e) => return Err(format!("expected RunError::Unreachable, got: {e}")),
    }

    let path = results_dir()
        .map_err(|e| format!("results dir: {e}"))?
        .join("fault_smoke_outcome.txt");
    std::fs::write(&path, &outcome).map_err(|e| format!("writing outcome: {e}"))?;
    println!("# fault_smoke: wrote {}", path.display());
    Ok(())
}

fn partition_wedge_trips_watchdog() -> Result<(), String> {
    // A saturating single flow crosses n5→n6; the link dies at cycle 60
    // with flits in flight. DOR has no detour, so the wormhole wedges and
    // only the watchdog can turn the freeze into a diagnostic.
    let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 60));
    let mut net = Network::with_faults(
        SimConfig::small(),
        RoutingSpec::Dor.build(),
        7,
        plan,
        UnreachablePolicy::Drop,
    )
    .map_err(|e| format!("config rejected: {e}"))?;
    let mut wl = FlowSet::new(vec![SingleFlow {
        src: NodeId(4),
        dest: NodeId(7),
        rate: 1.0,
        size: 8,
    }]);
    let mut watchdog = StallWatchdog::new(150);
    match net.run_watched(&mut wl, 5_000, &mut NullProbe, &mut watchdog) {
        Ok(()) => Err("mid-stream cut did not wedge the DOR wormhole".into()),
        Err(diag) => {
            let text = diag.to_string();
            if !text.starts_with("STALL") {
                return Err(format!("diagnostic bundle malformed:\n{text}"));
            }
            if diag.in_flight == 0 {
                return Err("watchdog tripped with no packets in flight".into());
            }
            let path = results_dir()
                .map_err(|e| format!("results dir: {e}"))?
                .join("fault_smoke_stall.txt");
            std::fs::write(&path, &text).map_err(|e| format!("writing bundle: {e}"))?;
            println!(
                "# fault_smoke: watchdog tripped at cycle {} ({} in flight); bundle: {}",
                diag.cycle,
                diag.in_flight,
                path.display()
            );
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let mut ok = true;
    for (name, result) in [
        ("faulted sweep determinism", sweep_determinism()),
        ("fault accounting", accounting()),
        ("partition wedge watchdog", partition_wedge_trips_watchdog()),
    ] {
        match result {
            Ok(()) => println!("fault_smoke: {name} ok"),
            Err(e) => {
                eprintln!("fault_smoke: {name} FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
