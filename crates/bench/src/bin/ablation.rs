//! Ablation study of Footprint's design choices (the knobs DESIGN.md's
//! calibration notes call out):
//!
//! * **Tiering** — behaviour-matched footprint-first vs Algorithm 1's
//!   literal priority labels (idle above footprint).
//! * **Joins** — strict atomic reallocation (standing requests) vs joining
//!   still-draining footprint VCs, bounded and unbounded.
//! * **Congestion threshold** — the idle-VC count below which a port is
//!   treated as congested (paper: V/2).
//!
//! Each variant runs the two discriminating workloads: saturated shuffle
//! (stability of permutation traffic) and the Figure 9 hotspot mix
//! (isolation quality, background latency/throughput). All variants of a
//! workload run as one job set.

use footprint_bench::phases_from_env;
use footprint_core::JobSet;
use footprint_routing::Footprint;
use footprint_sim::{Network, SimConfig};
use footprint_stats::Table;
use footprint_traffic::{patterns, HotspotWorkload, PacketSize, SyntheticWorkload};

struct Variant {
    label: &'static str,
    build: fn() -> Footprint,
}

const VARIANTS: [Variant; 7] = [
    Variant {
        label: "default (fp-first, no join)",
        build: Footprint::new,
    },
    Variant {
        label: "literal Algorithm-1 tiers",
        build: || Footprint::new().with_literal_tiering(),
    },
    Variant {
        label: "with joins (unbounded)",
        build: || Footprint::new().with_join(),
    },
    Variant {
        label: "with joins, max 1 fp VC",
        build: || Footprint::new().with_join().with_max_footprint_vcs(1),
    },
    Variant {
        label: "threshold 0 (never congested)",
        build: || Footprint::with_threshold(0),
    },
    Variant {
        label: "threshold 2",
        build: || Footprint::with_threshold(2),
    },
    Variant {
        label: "threshold V (always congested)",
        build: || Footprint::with_threshold(usize::MAX >> 1),
    },
];

fn main() {
    let phases = phases_from_env();
    let cfg = SimConfig::paper_default();

    println!("Footprint ablation — saturated shuffle (rate 0.54, 8x8, 10 VCs)\n");
    let mut jobs = JobSet::new();
    for v in &VARIANTS {
        let build = v.build;
        let label = v.label;
        jobs.push(move || {
            let mut net = Network::new(cfg, Box::new(build()), 0xAB1).expect("valid config");
            let mut wl = SyntheticWorkload::new(
                cfg.topo(),
                Box::new(patterns::Shuffle),
                PacketSize::SINGLE,
                0.54,
            );
            net.run(&mut wl, phases.warmup);
            net.metrics_mut().reset_window();
            net.run(&mut wl, phases.measurement);
            let m = net.metrics();
            [
                label.to_string(),
                format!("{:.3}", m.total_throughput(64)),
                format!("{:.1}", m.total().mean_latency()),
                m.va_blocks.to_string(),
            ]
        });
    }
    let mut t = Table::new(["variant", "throughput", "latency", "VA blocks"]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());

    println!("Footprint ablation — hotspot isolation (hotspot 0.5, background 0.3)\n");
    let mut jobs = JobSet::new();
    for v in &VARIANTS {
        let build = v.build;
        let label = v.label;
        jobs.push(move || {
            let mut net = Network::new(cfg, Box::new(build()), 0xAB2).expect("valid config");
            let mut wl = HotspotWorkload::paper(cfg.topo(), 0.5);
            net.run(&mut wl, phases.warmup);
            net.metrics_mut().reset_window();
            net.run(&mut wl, phases.measurement);
            let m = net.metrics();
            [
                label.to_string(),
                format!("{:.1}", m.class(0).mean_latency()),
                format!("{:.3}", m.throughput(0, 64)),
            ]
        });
    }
    let mut t = Table::new(["variant", "bg latency", "bg throughput"]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());
    println!("Reading: the default keeps shuffle stable AND isolates the hotspot;");
    println!("literal tiers lose isolation; unbounded joins destabilize shuffle;");
    println!("the threshold mainly shifts when footprint-following engages.");
}
