//! Figure 6: latency-throughput comparison with variable packet sizes
//! (1–6 flits, uniformly distributed), 8×8 mesh, 10 VCs.

use footprint_bench::{default_rates, paper_builder, phases_from_env, print_curves, CurveSet};
use footprint_core::{PacketSize, TrafficSpec};
use footprint_routing::RoutingSpec;
use footprint_stats::Table;

fn main() {
    let phases = phases_from_env();
    let rates = default_rates();
    let mut set = CurveSet::new(&rates);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for spec in RoutingSpec::PAPER_SET {
            set.add(
                paper_builder(spec, traffic, phases).packet_size(PacketSize::PAPER_VARIABLE),
            );
        }
    }
    let mut curves = set.run().into_iter();
    let mut summary = Table::new(["pattern", "algorithm", "saturation throughput"]);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        let block: Vec<_> = RoutingSpec::PAPER_SET
            .iter()
            .map(|_| curves.next().expect("one curve per queued spec"))
            .collect();
        print_curves(
            &format!("Figure 6 ({traffic}) — 1..6-flit packets, 8x8, 10 VCs"),
            &block,
        );
        for c in &block {
            // `Saturation` renders ">= x" for curves that never crossed
            // 3× zero-load latency in the measured range (and "n/a" for
            // empty curves) instead of a fake 0.000.
            summary.row([
                traffic.name(),
                c.label.clone(),
                c.saturation(3.0).to_string(),
            ]);
        }
    }
    println!("{}", summary.render());
}
