//! Figure 10: PARSEC-like trace workloads (substitution — see
//! `footprint-traffic::parsec`).
//!
//! * (a) mean packet latency of Footprint vs DBAR for application pairs run
//!   simultaneously;
//! * (b) purity of blocking per application (10,000 tracked packets);
//! * (c) degree of HoL blocking per application.

use footprint_bench::{gain, phases_from_env};
use footprint_core::{App, JobSet, RoutingSpec, RunOptions, SimulationBuilder, TrafficSpec};
use footprint_stats::table::pct;
use footprint_stats::{PurityProbe, Table};
use footprint_traffic::APPS;

fn run_pair(a: App, b: App, spec: RoutingSpec, phases: footprint_bench::Phases) -> (f64, PurityProbe) {
    run_pair_vcs(a, b, spec, phases, 10)
}

fn run_pair_vcs(
    a: App,
    b: App,
    spec: RoutingSpec,
    phases: footprint_bench::Phases,
    vcs: usize,
) -> (f64, PurityProbe) {
    let mut probe = PurityProbe::paper();
    let report = SimulationBuilder::paper_default()
        .vcs(vcs)
        .routing(spec)
        .traffic(TrafficSpec::ParsecPair(a, b))
        .warmup(phases.warmup)
        .measurement(phases.measurement)
        .seed(0x0F10)
        .run_with(RunOptions::new().probe(&mut probe))
        .expect("static experiment config");
    (report.latency.mean_latency, probe)
}

/// Percentage formatter that reports "n/a" when the baseline carries no
/// signal instead of a nonsense percentage.
fn pct_or_na(ours: f64, baseline: f64) -> String {
    if baseline < 1e-6 && ours < 1e-6 {
        "n/a".to_string()
    } else if baseline < 1e-6 {
        "new".to_string()
    } else {
        pct(gain(ours, baseline))
    }
}

fn main() {
    let phases = phases_from_env();

    // (a) Latency difference on simultaneous pairs. Both algorithms' runs
    // of every pair go into one job set ((pair × algorithm) jobs).
    println!("Figure 10(a) — mean latency, Footprint vs DBAR, simultaneous pairs\n");
    let mut pair_list = Vec::new();
    for (i, &a) in APPS.iter().enumerate() {
        for &b in &APPS[i..] {
            pair_list.push((a, b));
        }
    }
    let mut jobs = JobSet::new();
    for &(a, b) in &pair_list {
        for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
            jobs.push(move || run_pair(a, b, spec, phases).0);
        }
    }
    let latencies = jobs.run();
    let mut ta = Table::new(["pair", "footprint", "dbar", "improvement"]);
    let mut best = (0.0f64, String::new());
    let mut sum_gain = 0.0;
    let mut pairs = 0u32;
    for (k, &(a, b)) in pair_list.iter().enumerate() {
        let (fp, db) = (latencies[2 * k], latencies[2 * k + 1]);
        // Positive improvement = Footprint's latency is lower.
        let improvement = gain(db, fp);
        sum_gain += improvement;
        pairs += 1;
        if improvement > best.0 {
            best = (improvement, format!("{}+{}", a.name(), b.name()));
        }
        ta.row([
            format!("{}+{}", a.name(), b.name()),
            format!("{fp:.1}"),
            format!("{db:.1}"),
            pct(improvement),
        ]);
    }
    println!("{}", ta.render());
    println!(
        "mean improvement {:.1}%, best {} ({:.1}%)\n",
        100.0 * sum_gain / pairs as f64,
        best.1,
        100.0 * best.0
    );

    // (b)/(c) Purity and HoL degree per application. Each app is paired
    // with fluidanimate (the heaviest app) at 4 VCs so the network actually
    // blocks — a single light app at 10 VCs generates too few blocking
    // events for the statistics to mean anything (the paper's real traces
    // are heavier than our substitutes).
    println!("Figure 10(b,c) — blocking purity and HoL degree per application");
    println!("(each app paired with fluidanimate, 4 VCs, 10,000 tracked packets)\n");
    let mut jobs = JobSet::new();
    for &app in &APPS {
        for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
            jobs.push(move || run_pair_vcs(app, App::Fluidanimate, spec, phases, 4).1);
        }
    }
    let probes = jobs.run();
    let mut tb = Table::new([
        "app",
        "purity (footprint)",
        "purity (dbar)",
        "purity gain",
        "HoL deg (footprint)",
        "HoL deg (dbar)",
        "HoL reduction",
    ]);
    for (k, &app) in APPS.iter().enumerate() {
        let (p_fp, p_db) = (&probes[2 * k], &probes[2 * k + 1]);
        tb.row([
            app.name().to_string(),
            format!("{:.3}", p_fp.mean_purity()),
            format!("{:.3}", p_db.mean_purity()),
            pct_or_na(p_fp.mean_purity(), p_db.mean_purity()),
            format!("{:.2}", p_fp.hol_degree()),
            format!("{:.2}", p_db.hol_degree()),
            pct_or_na(p_db.hol_degree(), p_fp.hol_degree()),
        ]);
    }
    println!("{}", tb.render());
    println!("(Paper: Footprint improves purity by up to 294% / avg 44%,");
    println!(" reduces HoL blocking by up to 22% / avg 10%.)");
}
