//! Topology comparison: latency-throughput on an 8×8 torus vs the paper's
//! 8×8 mesh (plus a 16-node ring for scale), same algorithms, same
//! patterns, same VC budget.
//!
//! The torus halves the network diameter (wraparound links) at the cost of
//! two dateline escape classes, so its curves should show lower zero-load
//! latency and later saturation on distance-heavy patterns — most visibly
//! on tornado, which is adversarial for meshes (every packet travels
//! half the ring in x) and nearly free for tori.
//!
//! Run with `FOOTPRINT_QUICK=1` for a fast smoke pass.

use footprint_bench::{
    default_rates, paper_builder, phases_from_env, print_curves, quick_rates, CurveSet,
};
use footprint_core::{SimulationBuilder, TrafficSpec};
use footprint_routing::RoutingSpec;
use footprint_stats::Table;
use footprint_topology::TopologySpec;

/// The algorithms that carry over to wrapping fabrics (the static
/// class→VC collapses are mesh-only and excluded).
const ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Footprint,
    RoutingSpec::Dbar,
    RoutingSpec::OddEven,
    RoutingSpec::Dor,
];

const PATTERNS: [TrafficSpec; 3] = [
    TrafficSpec::UniformRandom,
    TrafficSpec::Tornado,
    TrafficSpec::Transpose,
];

fn fabrics() -> [TopologySpec; 2] {
    [TopologySpec::mesh(8), TopologySpec::torus(8)]
}

fn main() {
    let phases = phases_from_env();
    let rates = if std::env::var_os("FOOTPRINT_QUICK").is_some() {
        quick_rates()
    } else {
        default_rates()
    };
    let mut set = CurveSet::new(&rates);
    for traffic in PATTERNS {
        for topo in fabrics() {
            for spec in ALGOS {
                set.add_labeled(
                    format!("{} @ {topo}", spec.name()),
                    paper_builder(spec, traffic, phases).topology(topo),
                );
            }
        }
    }
    let mut curves = set.run().into_iter();

    let mut summary = Table::new(["pattern", "topology", "algorithm", "saturation throughput"]);
    for traffic in PATTERNS {
        for topo in fabrics() {
            let block: Vec<_> = ALGOS
                .iter()
                .map(|_| curves.next().expect("one curve per queued spec"))
                .collect();
            print_curves(
                &format!("Topology figure ({traffic} on {topo}) — 10 VCs, single-flit"),
                &block,
            );
            for (spec, c) in ALGOS.iter().zip(&block) {
                summary.row([
                    traffic.name().to_string(),
                    topo.to_string(),
                    spec.name().to_string(),
                    c.saturation(3.0).to_string(),
                ]);
            }
        }
    }
    println!("{}", summary.render());

    // Ring scale point: one curve at matched VC budget, Footprint only —
    // the 16-node ring is a diameter stress, not a paper configuration.
    let ring = SimulationBuilder::ring(16)
        .vcs(10)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .warmup(phases.warmup)
        .measurement(phases.measurement)
        .seed(0x0F00)
        .sweep_with(&rates, footprint_core::SweepOptions::new())
        .expect("ring configuration must be valid");
    print_curves("Topology figure (uniform random on ring:16)", &[ring]);
}
