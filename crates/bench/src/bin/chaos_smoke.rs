//! Chaos smoke test (run by CI): the resilience guarantees on wrapping
//! fabrics, checked end to end.
//!
//! Three checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Partitioned ring completes** — cutting the 16-ring's wraparound
//!    edge plus one grid edge splits it in two *and* severs the
//!    deterministic escape network. The run must be refused up front with
//!    the typed [`RunError::EscapeCompromised`] verdict; rerun in
//!    degraded-escape mode under the sentinel it must complete without
//!    tripping the watchdog, with a partition report covering every node
//!    and exact delivery accounting on the surviving arcs.
//!
//! 2. **Dateline verdict on the torus** — the escape-CDG checker proves
//!    the unmasked 4×4 torus escape network acyclic, proves a dateline
//!    cut compromises it (non-empty severed pairs, both directions of the
//!    wrap edge counted), and the run layer surfaces exactly that verdict
//!    for every escape-classed algorithm while admitting the
//!    acyclic-subgraph one.
//!
//! 3. **Kill/resume drill** — a faulted sweep journaled to disk, then
//!    truncated as a crash would leave it (half a record torn off), must
//!    resume bit-identically to the uninterrupted curve.
//!
//! Writes `results/chaos_smoke.txt`; every passed check appends a `CHAOS`
//! line CI greps for.

use std::fmt::Write as _;
use std::process::ExitCode;

use footprint_bench::results_dir;
use footprint_core::{
    RoutingSpec, RunError, RunOptions, SimulationBuilder, SweepOptions, TrafficSpec,
};
use footprint_routing::cdg::{check_escape_under_mask, EscapeMaskVerdict};
use footprint_topology::{Direction, FaultEvent, FaultPlan, NodeId, Torus};

/// The partitioning plan: the ring's wrap edge 15↔0 plus grid edge 7↔8,
/// splitting {0..=7} from {8..=15}.
fn ring_partition_plan() -> FaultPlan {
    FaultPlan::new()
        .with(FaultEvent::link_down(NodeId(15), Direction::East, 0))
        .with(FaultEvent::link_down(NodeId(7), Direction::East, 0))
}

fn ring_builder() -> SimulationBuilder {
    SimulationBuilder::ring(16)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .injection_rate(0.1)
        .warmup(0)
        .measurement(600)
        .drain(1_500)
        .seed(0xC405)
}

fn partitioned_ring(out: &mut String) -> Result<(), String> {
    // Refused with the typed verdict first…
    match ring_builder().run_with(
        RunOptions::new()
            .faults(ring_partition_plan())
            .watchdog(20_000),
    ) {
        Err(RunError::EscapeCompromised {
            severed,
            masked_wrap_channels,
        }) => {
            if severed.is_empty() || masked_wrap_channels != 2 {
                return Err(format!(
                    "malformed verdict: {} severed, {masked_wrap_channels} wrap channels",
                    severed.len()
                ));
            }
        }
        Ok(_) => return Err("wrap-cut ring run was admitted without the opt-in".into()),
        Err(e) => return Err(format!("expected EscapeCompromised, got: {e}")),
    }
    // …then completed gracefully in degraded-escape mode.
    let report = ring_builder()
        .run_with(
            RunOptions::new()
                .faults(ring_partition_plan())
                .degraded_escape(true)
                .sentinel(true)
                .watchdog(20_000),
        )
        .map_err(|e| format!("degraded partitioned run failed: {e}"))?;
    if !report.partitions.was_partitioned() {
        return Err("partition report shows a connected fabric".into());
    }
    if report.partitions.final_components() != 2 {
        return Err(format!(
            "expected 2 components, got {}",
            report.partitions.final_components()
        ));
    }
    if !report.partitions.covers_all_nodes(16) {
        return Err("partition report does not cover every node".into());
    }
    if !report.faults.fully_accounted() {
        return Err("partitioned run books do not close".into());
    }
    if report.faults.dropped() == 0 || report.latency.ejected_packets == 0 {
        return Err("partitioned run shows no cross-arc drops or no delivery".into());
    }
    let _ = writeln!(
        out,
        "CHAOS partitioned-ring degraded run: {} epochs, {} delivered, {} dropped, all 16 nodes accounted",
        report.partitions.epochs.len(),
        report.faults.delivered(),
        report.faults.dropped()
    );
    Ok(())
}

fn dateline_verdict(out: &mut String) -> Result<(), String> {
    let torus = Torus::square(4);
    // The unmasked escape network is provably acyclic.
    if check_escape_under_mask(torus, &[]) != EscapeMaskVerdict::StillAcyclic {
        return Err("unmasked torus escape network not proven acyclic".into());
    }
    // A dateline cut (wrap edge of row 0, both directions) compromises it.
    let dead = [(NodeId(3), Direction::East), (NodeId(0), Direction::West)];
    let severed_pairs = match check_escape_under_mask(torus, &dead) {
        EscapeMaskVerdict::EscapeCompromised {
            severed,
            masked_wrap_channels: 2,
        } if !severed.is_empty() => severed.len(),
        v => return Err(format!("dateline cut verdict malformed: {v:?}")),
    };
    // The run layer surfaces the same verdict for escape-classed
    // algorithms, and admits the acyclic-subgraph one.
    let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(3), Direction::East, 0));
    let run = |spec: RoutingSpec| {
        SimulationBuilder::torus(4)
            .vcs(6)
            .routing(spec)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(0.1)
            .warmup(0)
            .measurement(400)
            .drain(1_000)
            .seed(0xDA7E)
            .run_with(RunOptions::new().faults(plan.clone()).watchdog(20_000))
    };
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar, RoutingSpec::Dor] {
        match run(spec) {
            Err(RunError::EscapeCompromised { .. }) => {}
            Ok(_) => return Err(format!("{}: dateline cut admitted silently", spec.name())),
            Err(e) => return Err(format!("{}: unexpected error {e}", spec.name())),
        }
    }
    let report = run(RoutingSpec::OddEven)
        .map_err(|e| format!("odd-even (acyclic subgraph) refused: {e}"))?;
    if !report.faults.fully_accounted() {
        return Err("odd-even dateline-cut books do not close".into());
    }
    let _ = writeln!(
        out,
        "CHAOS dateline verdict torus:4x4: escape acyclic unmasked, {severed_pairs} pair(s) severed under the cut, typed refusal for escape-classed algorithms"
    );
    Ok(())
}

fn kill_resume_drill(out: &mut String) -> Result<(), String> {
    let rates = [0.05, 0.1, 0.15];
    let plan = FaultPlan::new().with(FaultEvent::link_down(NodeId(5), Direction::East, 0));
    let sweep = |opts: SweepOptions| {
        ring_builder()
            .measurement(400)
            .drain(1_000)
            .sweep_with(&rates, opts.faults(plan.clone()).watchdog(20_000))
            .map_err(|e| format!("faulted ring sweep: {e}"))
    };
    let baseline = sweep(SweepOptions::new().threads(1))?;

    let mut path = std::env::temp_dir();
    path.push(format!("footprint-chaos-smoke-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = sweep(SweepOptions::new().threads(4).checkpoint(&path))?;

    // Simulate `kill -9` mid-campaign: keep the header and the first
    // completed record, tear the second record in half.
    let journal =
        std::fs::read_to_string(&path).map_err(|e| format!("reading journal: {e}"))?;
    let lines: Vec<&str> = journal.lines().collect();
    if lines.len() < 3 {
        return Err(format!("journal too short: {} lines", lines.len()));
    }
    let torn = format!("{}\n{}\n{}", lines[0], lines[1], &lines[2][..lines[2].len() / 2]);
    std::fs::write(&path, torn).map_err(|e| format!("truncating journal: {e}"))?;

    let resumed = sweep(SweepOptions::new().threads(4).checkpoint(&path))?;
    let _ = std::fs::remove_file(&path);
    if resumed != baseline {
        return Err("resumed faulted sweep diverged from the uninterrupted curve".into());
    }
    let _ = writeln!(
        out,
        "CHAOS kill/resume drill: torn journal resumed bit-identically over {} rates",
        rates.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    type Check = fn(&mut String) -> Result<(), String>;
    let mut out = String::new();
    let checks: [(&str, Check); 3] = [
        ("partitioned ring completes", partitioned_ring),
        ("dateline verdict on torus", dateline_verdict),
        ("kill/resume drill", kill_resume_drill),
    ];
    let mut ok = true;
    for (name, check) in checks {
        match check(&mut out) {
            Ok(()) => println!("chaos_smoke: {name} ok"),
            Err(e) => {
                eprintln!("chaos_smoke: {name} FAILED: {e}");
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    let dir = match results_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("chaos_smoke: results/ not writable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = dir.join("chaos_smoke.txt");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("chaos_smoke: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    print!("{out}");
    ExitCode::SUCCESS
}
