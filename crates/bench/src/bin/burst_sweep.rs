//! Steady-vs-bursty latency curves at equal mean load.
//!
//! For each routing algorithm and each mean load `m`, two runs:
//!
//! * **steady** — a constant-rate workload at `m` flits/node/cycle.
//! * **bursty** — the same workload at peak rate `2m`, gated by a
//!   geometric on/off modulator with equal mean on- and off-phases
//!   (50% duty), so the *mean* offered load is the same `m` while the
//!   instantaneous load alternates between `2m` and zero.
//!
//! Both modes run as a single-tenant experiment so the per-tenant probe
//! supplies p50/p99 latency quantiles and the windowed offered/delivered
//! series. The comparison answers the question the steady-state sweeps
//! cannot: how much latency does an algorithm give back when the same
//! traffic arrives in bursts — adaptive routers should absorb the peaks
//! that push deterministic routing past saturation.
//!
//! Artifacts (in [`results_dir`]):
//!
//! * `burst_sweep.csv` — `algorithm,mode,mean_load,peak_rate,accepted,
//!   mean_latency,p50,p99` per (algorithm × mode × load) point.
//! * `burst_timeline.csv` — the per-window offered/delivered series for
//!   one representative load under Footprint, steady vs bursty, showing
//!   the on/off structure the modulator imprints on delivery.
//!
//! `FOOTPRINT_QUICK` shrinks the load axis and the phases for CI.

use std::process::ExitCode;

use footprint_bench::{phases_from_env, results_dir, Phases};
use footprint_core::{
    DurationDist, JobSet, ModulationSpec, RoutingSpec, RunOptions, RunReport, SimulationBuilder,
    TenantSpec, TrafficSpec,
};

/// Algorithms compared (deterministic, partially adaptive, fully adaptive).
const ALGOS: [RoutingSpec; 3] = [RoutingSpec::Dor, RoutingSpec::OddEven, RoutingSpec::Footprint];

/// Mean on/off phase length of the bursty gate, in cycles.
const BURST_MEAN: f64 = 50.0;

/// The traffic mode of one run.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Steady,
    Bursty,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Steady => "steady",
            Mode::Bursty => "bursty",
        }
    }

    /// Peak injection rate that averages out to `mean_load`.
    fn peak(self, mean_load: f64) -> f64 {
        match self {
            Mode::Steady => mean_load,
            Mode::Bursty => 2.0 * mean_load,
        }
    }

    fn modulation(self) -> ModulationSpec {
        match self {
            Mode::Steady => ModulationSpec::Steady,
            // Equal geometric on/off means → 50% duty at memoryless
            // burst boundaries; peak 2m × duty 0.5 = mean m.
            Mode::Bursty => ModulationSpec::OnOff {
                on: DurationDist::Geometric { mean: BURST_MEAN },
                off: DurationDist::Geometric { mean: BURST_MEAN },
            },
        }
    }
}

fn builder(algo: RoutingSpec, mode: Mode, mean_load: f64, phases: Phases) -> SimulationBuilder {
    // Single-tenant so the report carries the tenant probe's quantiles
    // and windowed counters for this run.
    let tenant = TenantSpec::new("traffic", TrafficSpec::UniformRandom, mode.peak(mean_load))
        .modulation(mode.modulation());
    SimulationBuilder::paper_default()
        .routing(algo)
        .tenants(vec![tenant])
        .warmup(phases.warmup)
        .measurement(phases.measurement)
        .seed(0xB5E7)
}

fn run(algo: RoutingSpec, mode: Mode, mean_load: f64, phases: Phases) -> RunReport {
    builder(algo, mode, mean_load, phases)
        .run_with(RunOptions::new().watchdog(100_000))
        .expect("experiment configuration must be valid")
}

fn main() -> ExitCode {
    let phases = phases_from_env();
    let loads: Vec<f64> = if std::env::var_os("FOOTPRINT_QUICK").is_some() {
        vec![0.05, 0.15, 0.25]
    } else {
        vec![0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35]
    };

    // Every (algorithm × mode × load) run is independent: flatten the
    // whole figure into one job set, reassemble in submission order.
    let mut jobs = JobSet::new();
    let mut keys = Vec::new();
    for &algo in &ALGOS {
        for mode in [Mode::Steady, Mode::Bursty] {
            for &m in &loads {
                keys.push((algo, mode, m));
                jobs.push(move || run(algo, mode, m, phases));
            }
        }
    }
    let reports = jobs.run();

    let mut csv = String::from("algorithm,mode,mean_load,peak_rate,accepted,mean_latency,p50,p99\n");
    println!("## steady vs bursty at equal mean load ({} on/off mean cycles)", BURST_MEAN);
    println!("# algorithm mode load accepted latency p50 p99");
    for ((algo, mode, m), report) in keys.iter().zip(&reports) {
        let t = report.tenant("traffic").expect("single-tenant run");
        let fmt_q = |q: Option<u64>| q.map_or_else(|| "nan".into(), |v| v.to_string());
        csv.push_str(&format!(
            "{},{},{:.3},{:.3},{:.4},{:.2},{},{}\n",
            algo.name(),
            mode.label(),
            m,
            mode.peak(*m),
            t.throughput,
            t.mean_latency,
            fmt_q(t.p50_latency),
            fmt_q(t.p99_latency),
        ));
        println!(
            "{:<10} {:<6} {:.3} {:.4} {:>8.2} {:>5} {:>5}",
            algo.name(),
            mode.label(),
            m,
            t.throughput,
            t.mean_latency,
            fmt_q(t.p50_latency),
            fmt_q(t.p99_latency),
        );
    }

    // Timeline at one representative load: the windowed offered/delivered
    // series makes the burst structure visible (steady rows are flat,
    // bursty rows alternate between ~2m and ~0).
    let rep_load = loads[loads.len() / 2];
    let mut timeline = String::from("mode,window,window_cycles,offered_packets,delivered_packets\n");
    for mode in [Mode::Steady, Mode::Bursty] {
        let report = keys
            .iter()
            .position(|&(a, mo, m)| a == RoutingSpec::Footprint && mo == mode && m == rep_load)
            .map(|i| &reports[i])
            .expect("representative point was swept");
        let t = report.tenant("traffic").expect("single-tenant run");
        for (i, w) in t.windows.iter().enumerate() {
            timeline.push_str(&format!(
                "{},{},{},{},{}\n",
                mode.label(),
                i,
                t.window_cycles,
                w.offered,
                w.delivered
            ));
        }
    }

    let dir = match results_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("burst_sweep: results dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, body) in [("burst_sweep.csv", &csv), ("burst_timeline.csv", &timeline)] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("burst_sweep: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("# burst_sweep: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
