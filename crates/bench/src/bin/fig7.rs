//! Figure 7: impact of the number of VCs — DBAR vs Footprint with 2, 4, 8
//! and 16 VCs per physical channel (plus the 10-VC baseline), 8×8 mesh.

use footprint_bench::{default_rates, gain, paper_builder, phases_from_env, print_curves, CurveSet};
use footprint_core::TrafficSpec;
use footprint_routing::RoutingSpec;
use footprint_stats::table::pct;
use footprint_stats::Table;

fn main() {
    let phases = phases_from_env();
    let rates = default_rates();
    let vc_counts = [2usize, 4, 8, 16];
    let mut set = CurveSet::new(&rates);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for &vcs in &vc_counts {
            for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
                set.add(paper_builder(spec, traffic, phases).vcs(vcs));
            }
        }
    }
    let mut curves = set.run().into_iter();
    let mut summary = Table::new([
        "pattern",
        "VCs",
        "footprint sat.",
        "dbar sat.",
        "footprint gain",
    ]);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for &vcs in &vc_counts {
            let block: Vec<_> = (0..2)
                .map(|_| curves.next().expect("one curve per queued spec"))
                .collect();
            let sats: Vec<f64> = block
                .iter()
                .map(|c| c.saturation_throughput(3.0).unwrap_or(0.0))
                .collect();
            print_curves(
                &format!("Figure 7 ({traffic}, {vcs} VCs) — DBAR vs Footprint"),
                &block,
            );
            summary.row([
                traffic.name(),
                vcs.to_string(),
                format!("{:.3}", sats[0]),
                format!("{:.3}", sats[1]),
                pct(gain(sats[0], sats[1])),
            ]);
        }
    }
    println!("{}", summary.render());
}
