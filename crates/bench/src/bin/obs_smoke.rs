//! Observability smoke test (run by CI).
//!
//! Two checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Probed sweep** — a small sweep with the full observability stack
//!    attached (per-point occupancy timelines via
//!    [`SimulationBuilder::sweep_point`] + [`SimulationBuilder::run_with`],
//!    then one fully observed run writing timeline CSVs and a flit-event
//!    JSONL trace under `results/`).
//!    The artifacts must exist and the trace must contain the whole flit
//!    lifecycle (inject, VC grant, SA grant, eject).
//!
//! 2. **Stall watchdog** — a deliberately broken routing function (the
//!    [`BlackHole`] below never routes a head, so traffic freezes at the
//!    first router) driven through [`Network::run_watched`]. The watchdog
//!    must trip and produce a diagnostic bundle, written to
//!    `results/obs_smoke_stall.txt`, instead of the run spinning to its
//!    cycle limit.

use std::process::ExitCode;

use footprint_bench::{observed_run, results_dir, ObserveOpts};
use footprint_core::{RunOptions, SimulationBuilder};
use footprint_routing::{RoutingAlgorithm, RoutingCtx, VcReallocationPolicy, VcRequest};
use footprint_sim::{EventTrace, FlowSet, Network, SimConfig, SingleFlow, StallWatchdog};
use footprint_stats::TimelineProbe;
use footprint_topology::NodeId;
use rand::RngCore;

/// A deliberately broken algorithm: injection works (the default
/// injection requests stand), but `route` never emits a request, so every
/// head waits forever at its first router.
struct BlackHole;

impl RoutingAlgorithm for BlackHole {
    fn name(&self) -> &'static str {
        "blackhole"
    }

    fn policy(&self) -> VcReallocationPolicy {
        VcReallocationPolicy::Atomic
    }

    fn has_escape(&self) -> bool {
        false
    }

    fn route(&self, _ctx: &RoutingCtx<'_>, _rng: &mut dyn RngCore, _out: &mut Vec<VcRequest>) {}
}

fn quick_builder() -> SimulationBuilder {
    SimulationBuilder::mesh(4)
        .vcs(4)
        .warmup(200)
        .measurement(600)
        .seed(0x0B5)
}

fn probed_sweep() -> Result<(), String> {
    let rates = [0.05, 0.15, 0.25];
    // The canonical observed-sweep pattern: each point is its own
    // `sweep_point` builder run under `run_with` with a probe attached.
    let base = quick_builder();
    let mut points = 0usize;
    let mut probes = Vec::new();
    for (index, &rate) in rates.iter().enumerate() {
        let mut probe = TimelineProbe::new(50);
        base.sweep_point(index, rate)
            .run_with(RunOptions::new().probe(&mut probe))
            .map_err(|e| format!("observed sweep point {index} failed: {e}"))?;
        points += 1;
        probes.push(probe);
    }
    if points != rates.len() {
        return Err(format!("expected {} sweep points", rates.len()));
    }
    if probes.iter().any(|p| p.mesh_samples().is_empty()) {
        return Err("a sweep point's timeline probe collected no samples".into());
    }

    let opts = ObserveOpts {
        stride: 50,
        trace_capacity: 16_384,
    };
    let (report, paths) = observed_run("obs_smoke", &quick_builder().injection_rate(0.2), opts)
        .map_err(|e| format!("observed_run failed: {e}"))?;
    if report.latency.ejected_packets == 0 {
        return Err("observed run delivered no packets".into());
    }
    for p in &paths {
        let len = std::fs::metadata(p)
            .map_err(|e| format!("missing artifact {}: {e}", p.display()))?
            .len();
        if len == 0 {
            return Err(format!("empty artifact {}", p.display()));
        }
        println!("# obs_smoke: wrote {} ({len} bytes)", p.display());
    }
    // The JSONL trace must show the full flit lifecycle.
    let events = std::fs::read_to_string(&paths[2])
        .map_err(|e| format!("unreadable trace {}: {e}", paths[2].display()))?;
    for kind in ["inject", "vc_grant", "sa_grant", "eject"] {
        if !events.contains(&format!("\"kind\":\"{kind}\"")) {
            return Err(format!("trace has no {kind} events"));
        }
    }
    Ok(())
}

fn stall_watchdog_fires() -> Result<(), String> {
    let mut net = Network::new(SimConfig::small(), Box::new(BlackHole), 7)
        .map_err(|e| format!("config rejected: {e}"))?;
    let mut wl = FlowSet::new(vec![SingleFlow {
        src: NodeId(0),
        dest: NodeId(5),
        rate: 1.0,
        size: 1,
    }]);
    let mut trace = EventTrace::with_capacity(1024);
    let mut watchdog = StallWatchdog::new(100);
    match net.run_watched(&mut wl, 5_000, &mut trace, &mut watchdog) {
        Ok(()) => Err("deliberately-stalled run finished without tripping the watchdog".into()),
        Err(diag) => {
            let text = diag.to_string();
            if !text.starts_with("STALL") {
                return Err(format!("diagnostic bundle malformed:\n{text}"));
            }
            if diag.in_flight == 0 {
                return Err("watchdog tripped with no packets in flight".into());
            }
            if diag.router_dumps.is_empty() {
                return Err("diagnostic bundle has no router dumps".into());
            }
            let path = results_dir()
                .map_err(|e| format!("results dir: {e}"))?
                .join("obs_smoke_stall.txt");
            std::fs::write(&path, &text).map_err(|e| format!("writing bundle: {e}"))?;
            println!(
                "# obs_smoke: watchdog tripped at cycle {} ({} in flight); bundle: {}",
                diag.cycle,
                diag.in_flight,
                path.display()
            );
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let mut ok = true;
    for (name, result) in [
        ("probed sweep", probed_sweep()),
        ("stall watchdog", stall_watchdog_fires()),
    ] {
        match result {
            Ok(()) => println!("obs_smoke: {name} ok"),
            Err(e) => {
                eprintln!("obs_smoke: {name} FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
