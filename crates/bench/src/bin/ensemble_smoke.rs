//! Ensemble smoke test (run by CI): the lane-parallel sweep engine and
//! the warm-start snapshot cache, checked end to end.
//!
//! Two checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Lockstep lanes are bit-identical** — a four-point sweep run as a
//!    four-lane ensemble must equal the sequential single-thread sweep
//!    exactly, for Footprint on the mesh and for Dbar on the torus (the
//!    wrapping fabric exercises dateline escape classes inside the
//!    snapshot codec's flit paths).
//!
//! 2. **Warm-start round-trips through disk** — a cold run against an
//!    empty cache directory must materialize a `.snap` file, and the warm
//!    rerun against that file must hit it (the file's mtime is untouched)
//!    and reproduce the cold report byte for byte.
//!
//! Writes `results/ensemble_smoke.txt`; every passed check appends an
//! `ENSEMBLE` line CI greps for.

use std::fmt::Write as _;
use std::process::ExitCode;

use footprint_bench::results_dir;
use footprint_core::{RoutingSpec, RunOptions, SimulationBuilder, SweepOptions};

const RATES: [f64; 4] = [0.04, 0.08, 0.12, 0.16];

fn lockstep_bit_identity(out: &mut String) -> Result<(), String> {
    let cases = [
        ("mesh:4x4", SimulationBuilder::mesh(4), RoutingSpec::Footprint),
        ("torus:4x4", SimulationBuilder::torus(4), RoutingSpec::Dbar),
    ];
    for (fabric, base, spec) in cases {
        let base = base
            .vcs(4)
            .warmup(150)
            .measurement(300)
            .drain(1_000)
            .seed(61)
            .routing(spec);
        // Sentinel pinned off so the lockstep path runs (rather than
        // falling back) even with FOOTPRINT_SENTINEL=1 in the environment.
        let sweep = |opts: SweepOptions| {
            base.clone()
                .sweep_with(&RATES, opts.threads(1).sentinel(false).watchdog(20_000))
                .map_err(|e| format!("{fabric}/{}: sweep failed: {e}", spec.name()))
        };
        let sequential = sweep(SweepOptions::new())?;
        let ensemble = sweep(SweepOptions::new().ensemble(RATES.len()))?;
        if format!("{sequential:?}") != format!("{ensemble:?}") {
            return Err(format!(
                "{fabric}/{}: ensemble lanes diverged from the sequential sweep",
                spec.name()
            ));
        }
        let _ = writeln!(
            out,
            "ENSEMBLE lockstep {fabric}/{}: {}-lane sweep bit-identical to sequential",
            spec.name(),
            RATES.len()
        );
    }
    Ok(())
}

fn warm_start_round_trip(out: &mut String) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("footprint-ensemble-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .warmup(200)
            .measurement(400)
            .drain(1_000)
            .injection_rate(0.12)
            .seed(67)
            .routing(RoutingSpec::Footprint)
            // The cache is (deliberately) ineligible under the sentinel;
            // pin it off so the check is environment-independent.
            .run_with(
                RunOptions::new()
                    .watchdog(20_000)
                    .sentinel(false)
                    .snapshot_cache(&dir),
            )
            .map_err(|e| format!("cached run failed: {e}"))
    };
    let cold = run()?;
    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cache dir not created by the cold run: {e}"))?
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .collect();
    if snaps.len() != 1 {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(format!("expected one .snap file, found {}", snaps.len()));
    }
    let stored = snaps[0]
        .metadata()
        .and_then(|m| m.modified())
        .map_err(|e| format!("snap mtime unreadable: {e}"))?;
    let warm = run()?;
    let after = snaps[0]
        .metadata()
        .and_then(|m| m.modified())
        .map_err(|e| format!("snap mtime unreadable after warm run: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);
    if after != stored {
        return Err("warm rerun rewrote the snapshot instead of hitting it".into());
    }
    if format!("{cold:?}") != format!("{warm:?}") {
        return Err("warm-start report diverged from the cold-start report".into());
    }
    let _ = writeln!(
        out,
        "ENSEMBLE warm-start: on-disk snapshot hit reproduced the cold report exactly"
    );
    Ok(())
}

fn main() -> ExitCode {
    type Check = fn(&mut String) -> Result<(), String>;
    let mut out = String::new();
    let checks: [(&str, Check); 2] = [
        ("lockstep lanes bit-identical", lockstep_bit_identity),
        ("warm-start round-trip", warm_start_round_trip),
    ];
    let mut ok = true;
    for (name, check) in checks {
        match check(&mut out) {
            Ok(()) => println!("ensemble_smoke: {name} ok"),
            Err(e) => {
                eprintln!("ensemble_smoke: {name} FAILED: {e}");
                ok = false;
            }
        }
    }
    if !ok {
        return ExitCode::FAILURE;
    }
    let dir = match results_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ensemble_smoke: results/ not writable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = dir.join("ensemble_smoke.txt");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("ensemble_smoke: writing {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    print!("{out}");
    ExitCode::SUCCESS
}
