//! Table 1: qualitative comparison of routing algorithms, backed by the
//! *measured* two-level adaptiveness of our implementations.
//!
//! The paper's Table 1 is qualitative (+/o/-). This binary reproduces that
//! table and augments it with the quantitative metrics of §3.1 computed
//! from the actual routing functions: mean path-level port adaptiveness on
//! the 8×8 mesh and the Eq. (3) VC adaptiveness at 10 VCs. The per-
//! algorithm measurements (an all-pairs path walk each) run as one job
//! set.

use footprint_core::JobSet;
use footprint_routing::adaptiveness::{mean_path_adaptiveness, vc_adaptiveness};
use footprint_routing::RoutingSpec;
use footprint_stats::Table;
use footprint_topology::Mesh;

fn main() {
    let mesh = Mesh::square(8);
    let num_vcs = 10;

    println!("Table 1 — qualitative comparison (paper rows for the algorithms we implement)\n");
    let mut qual = Table::new([
        "",
        "DBAR",
        "XORDET",
        "Odd-Even",
        "Footprint",
    ]);
    qual.row(["P_adapt", "+", "N/A", "+", "+"]);
    qual.row(["VC_adapt", "-", "N/A", "-", "+"]);
    qual.row(["Network congestion", "+", "-", "o", "o"]);
    qual.row(["Endpoint congestion", "-", "+", "-", "o"]);
    qual.row(["HoL blocking", "-", "o", "-", "+"]);
    println!("{}", qual.render());

    println!("Measured two-level adaptiveness (8x8 mesh, {num_vcs} VCs):\n");
    let mut jobs = JobSet::new();
    for spec in [
        RoutingSpec::Dbar,
        RoutingSpec::OddEven,
        RoutingSpec::Dor,
        RoutingSpec::Footprint,
        RoutingSpec::DorXordet,
    ] {
        jobs.push(move || {
            let algo = spec.build();
            let p = mean_path_adaptiveness(mesh, &*algo);
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.3}"),
                None => "N/A".to_string(),
            };
            [
                spec.name().to_string(),
                format!("{p:.4}"),
                fmt(vc_adaptiveness(&*algo, num_vcs, false)),
                fmt(vc_adaptiveness(&*algo, num_vcs, true)),
            ]
        });
    }
    let mut t = Table::new([
        "algorithm",
        "mean P_adapt (paths)",
        "VC_adapt (adaptive ch.)",
        "VC_adapt (escape ch.)",
    ]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());
    println!("(Footprint: Eq. (3) — escape channel 1.0, adaptive channels (V-1)/V.)");
}
