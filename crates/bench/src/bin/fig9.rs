//! Figure 9: hotspot traffic — the latency of the *background* traffic
//! (uniform random at a fixed 0.30 flits/node/cycle) as the hotspot flows'
//! injection rate sweeps up. Compares Footprint against DBAR on the
//! Table 3 flow set (8×8 mesh, 10 VCs, single-flit packets).
//!
//! The paper reports DBAR's background traffic collapsing at ≈0.39 hotspot
//! rate while Footprint holds to ≈0.56 (>40% improvement).

use footprint_bench::{gain, phases_from_env, CurveSet};
use footprint_core::{JobSet, RoutingSpec, SimulationBuilder, TrafficSpec};
use footprint_stats::table::pct;
use footprint_stats::Table;
use footprint_stats::TreeTimeline;
use footprint_topology::NodeId;
use footprint_traffic::BACKGROUND_CLASS;

fn main() {
    let phases = phases_from_env();
    // Dense sampling around the collapse region (the latency cliff is
    // sharp, so coarse steps would hide the algorithms' separation).
    let mut rates = Vec::new();
    let mut r = 0.05;
    while r < 0.299 {
        rates.push((r * 1000.0_f64).round() / 1000.0);
        r += 0.05;
    }
    while r < 0.699 {
        rates.push((r * 1000.0_f64).round() / 1000.0);
        r += 0.02;
    }
    while r <= 1.0001 {
        rates.push((r * 1000.0_f64).round() / 1000.0);
        r += 0.1;
    }
    println!("Figure 9 — background-traffic latency vs hotspot injection rate\n");
    // Both algorithms' hotspot sweeps (summarized on the background
    // class) run as one job set.
    let mut set = CurveSet::new(&rates);
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
        set.add_class(
            spec.name(),
            SimulationBuilder::paper_default()
                .routing(spec)
                .traffic(TrafficSpec::PAPER_HOTSPOT)
                .warmup(phases.warmup)
                .measurement(2 * phases.measurement)
                .seed(0x0F19),
            Some(BACKGROUND_CLASS),
        );
    }
    let curves = set.run();
    let mut sat_points = Vec::new();
    for curve in &curves {
        // Collapse criterion: the first hotspot rate at which the
        // background stops being delivered at (88% of) its offered load.
        // The paper's figure reads the same way: the point where the
        // background latency curve leaves the plot. A pure latency
        // threshold would misread Footprint's graceful degradation as
        // early saturation.
        let bg_offered = curve.points.first().map_or(0.0, |p| p.accepted);
        let sat = curve
            .points
            .iter()
            .find(|p| p.accepted < 0.88 * bg_offered)
            .map_or(
                curve.points.last().map_or(0.0, |p| p.offered),
                |p| p.offered,
            );
        sat_points.push(sat);
        println!("{curve}# background collapses at hotspot rate ~{sat:.3}\n");
    }
    let mut t = Table::new(["algorithm", "bg collapse point", "vs DBAR"]);
    t.row([
        "footprint".to_string(),
        format!("{:.3}", sat_points[0]),
        pct(gain(sat_points[0], sat_points[1])),
    ]);
    t.row([
        "dbar".to_string(),
        format!("{:.3}", sat_points[1]),
        "-".to_string(),
    ]);
    println!("{}", t.render());
    println!("(Paper: DBAR ≈ 0.39, Footprint ≈ 0.56, >40% improvement.)");
    postponement();
}

/// Part 2: tree-formation postponement. §4.2.5 says Footprint "could
/// postpone but not prevent the formation of the congestion tree" — here we
/// measure the postponement directly: at a fixed hotspot rate past both
/// collapse points, how many cycles does the background survive before its
/// per-window latency degrades, and how fast does the n63 tree grow?
fn postponement() {
    const HS_RATE: f64 = 0.48;
    const WINDOW: u64 = 250;
    const HORIZON: u64 = 20_000;
    println!("\nFigure 9 (postponement) — hotspot rate {HS_RATE}, background 0.3\n");
    // The two algorithms' drive loops are independent: one job each.
    let mut jobs = JobSet::new();
    for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
        jobs.push(move || {
            let (mut net, mut wl) = SimulationBuilder::paper_default()
                .routing(spec)
                .traffic(TrafficSpec::PAPER_HOTSPOT)
                .injection_rate(HS_RATE)
                .seed(0x0F19)
                .build()
                .expect("static experiment config");
            let mut timeline = TreeTimeline::new(NodeId(63));
            let mut collapse_cycle = None;
            let mut baseline: Option<f64> = None;
            let mut snapshot = Vec::new();
            while net.cycle() < HORIZON {
                net.metrics_mut().reset_window();
                net.run(&mut *wl, WINDOW);
                net.occupancy_snapshot_into(&mut snapshot);
                timeline.record(net.cycle(), &snapshot);
                let lat = net.metrics().class(BACKGROUND_CLASS).mean_latency();
                if lat > 0.0 {
                    let base = *baseline.get_or_insert(lat);
                    if collapse_cycle.is_none() && lat > 5.0 * base {
                        collapse_cycle = Some(net.cycle());
                    }
                }
            }
            [
                spec.name().to_string(),
                collapse_cycle.map_or(format!(">{HORIZON}"), |c| c.to_string()),
                timeline.peak_vcs().to_string(),
                format!("{:.1}", timeline.growth_rate()),
            ]
        });
    }
    let mut t = Table::new([
        "algorithm",
        "bg survives (cycles)",
        "tree peak VCs",
        "tree growth (VCs/kcycle)",
    ]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());
    println!("Reading: Footprint's tree forms later and grows more slowly — the");
    println!("postponement §4.2.5 describes — even where both eventually saturate.");
}
