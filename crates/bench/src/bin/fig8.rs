//! Figure 8: scalability — DBAR's saturation throughput normalized to
//! Footprint's on 4×4, 8×8 and 16×16 meshes (10 VCs).

use footprint_bench::{default_rates, phases_from_env, CurveSet};
use footprint_core::{SimulationBuilder, TrafficSpec};
use footprint_routing::RoutingSpec;
use footprint_stats::Table;
use footprint_topology::Mesh;

fn main() {
    let phases = phases_from_env();
    let rates = default_rates();
    // Every (pattern, mesh, algorithm) sweep is queued as one batch; the
    // saturation criterion is applied to the returned curves (exactly
    // what `SimulationBuilder::saturation` computes per sweep).
    let mut set = CurveSet::new(&rates);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for k in [4u16, 8, 16] {
            for spec in [RoutingSpec::Footprint, RoutingSpec::Dbar] {
                set.add(
                    SimulationBuilder::paper_default()
                        .topology(Mesh::square(k))
                        .routing(spec)
                        .traffic(traffic)
                        .warmup(phases.warmup)
                        .measurement(phases.measurement)
                        .seed(0x0F16 + k as u64),
                );
            }
        }
    }
    let mut curves = set.run().into_iter();
    let mut t = Table::new([
        "pattern",
        "mesh",
        "footprint sat.",
        "dbar sat.",
        "dbar normalized",
    ]);
    for traffic in TrafficSpec::PAPER_PATTERNS {
        for k in [4u16, 8, 16] {
            let sats: Vec<footprint_stats::Saturation> = (0..2)
                .map(|_| {
                    curves
                        .next()
                        .expect("one curve per queued spec")
                        .saturation(3.0)
                })
                .collect();
            // Normalization only makes sense between two *measured*
            // crossings: a curve that never saturated yields a lower
            // bound, and dividing bounds (or the old 0.0 sentinel) would
            // print a meaningless ratio as if it were data.
            let normalized = match (sats[0].reached(), sats[1].reached()) {
                (Some(fp), Some(dbar)) if fp > 0.0 => format!("{:.3}", dbar / fp),
                _ => "n/a".to_string(),
            };
            t.row([
                traffic.name(),
                format!("{k}x{k}"),
                sats[0].to_string(),
                sats[1].to_string(),
                normalized,
            ]);
        }
    }
    println!("Figure 8 — DBAR saturation throughput normalized to Footprint\n");
    println!("{}", t.render());
    println!("Expectation (paper): normalized DBAR < 1 everywhere, and smaller on 16x16");
    println!("than 4x4 (Footprint's margin grows with network size).");
}
