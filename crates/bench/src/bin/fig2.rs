//! Figure 2: congestion-tree shape and HoL impact under different routing
//! algorithms.
//!
//! Reproduces the paper's motivating example: the four-flow permutation
//! `{f1: n0→n10, f2: n1→n15, f3: n4→n13, f4: n12→n13}` on a 4×4 mesh.
//! `f1`/`f2` create *network* congestion; `f3`/`f4` oversubscribe `n13`
//! (*endpoint* congestion). Two measurements:
//!
//! 1. **Tree shape** — steady-state congestion tree of `n13`: links, VCs
//!    and mean branch thickness. DOR saturates all VCs of few links (thick,
//!    narrow); adaptive routing spreads over more links; XORDET pins the
//!    tree to one VC per link (thin).
//! 2. **HoL impact** — the *functional* meaning of a slim tree: mean
//!    latency of light uniform background traffic sharing the mesh with the
//!    hotspot flows. Under sustained oversubscription every work-conserving
//!    algorithm eventually fills all the VCs it ever touched (the backlog
//!    must sit somewhere), so the background latency — how much the tree
//!    hurts everyone else — is the discriminating metric, and is where
//!    Footprint beats the fully adaptive baseline.

use footprint_core::{JobSet, RoutingSpec, SimulationBuilder, TrafficSpec};
use footprint_stats::{table::f1 as fmt1, Table, TreeAnalysis};
use footprint_topology::NodeId;
use footprint_traffic::{patterns::Uniform, Overlay, PacketSize, Permutation, SyntheticWorkload};

const ALGOS: [RoutingSpec; 4] = [
    RoutingSpec::Dor,
    RoutingSpec::Dbar,
    RoutingSpec::DorXordet,
    RoutingSpec::Footprint,
];

fn main() {
    for vcs in [4usize, 10] {
        tree_shape(vcs);
    }
    hol_impact();
}

/// Part 1: the congestion tree of the oversubscribed endpoint. Each
/// algorithm's drive-and-sample loop is one job in the set.
fn tree_shape(vcs: usize) {
    println!("Figure 2 — congestion tree of the oversubscribed endpoint n13 (4x4 mesh, {vcs} VCs)\n");
    let mut jobs = JobSet::new();
    for spec in ALGOS {
        jobs.push(move || {
            let (mut net, mut wl) = SimulationBuilder::mesh(4)
                .vcs(vcs)
                .routing(spec)
                .traffic(TrafficSpec::Figure2)
                .injection_rate(1.0)
                .seed(0xF16)
                .build()
                .expect("static experiment config");
            net.run(&mut *wl, 500);
            let (mut links, mut vcs_sum, mut occ) = (0usize, 0usize, 0usize);
            let samples = 20;
            let mut snapshot = Vec::new();
            for _ in 0..samples {
                net.run(&mut *wl, 25);
                net.occupancy_snapshot_into(&mut snapshot);
                let analysis = TreeAnalysis::from_snapshot(&snapshot);
                if let Some(tree) = analysis.tree(NodeId(13)) {
                    links += tree.links;
                    vcs_sum += tree.vcs;
                }
                occ += analysis.occupied_vcs;
            }
            let links = links as f64 / samples as f64;
            let vcs_avg = vcs_sum as f64 / samples as f64;
            [
                spec.name().to_string(),
                fmt1(links),
                fmt1(vcs_avg),
                fmt1(if links > 0.0 { vcs_avg / links } else { 0.0 }),
                fmt1(occ as f64 / samples as f64),
            ]
        });
    }
    let mut t = Table::new([
        "algorithm",
        "links",
        "VCs",
        "thickness",
        "total occupied VCs",
    ]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());
}

/// Part 2: the impact of the congestion tree on background traffic.
fn hol_impact() {
    println!("Figure 2 (impact) — background latency beside the hotspot flows (4x4, 10 VCs)\n");
    let mut jobs = JobSet::new();
    for spec in ALGOS {
        jobs.push(move || {
            let (mut net, _) = SimulationBuilder::mesh(4)
                .vcs(10)
                .routing(spec)
                .seed(0xF16)
                .build()
                .expect("static experiment config");
            let mesh = footprint_topology::Mesh::square(4);
            let fg = SyntheticWorkload::new(
                mesh,
                Box::new(Permutation::figure2_example(mesh)),
                PacketSize::SINGLE,
                1.0,
            )
            .with_class(1);
            let bg = SyntheticWorkload::new(mesh, Box::new(Uniform), PacketSize::SINGLE, 0.15);
            let mut wl = Overlay::new(fg, bg);
            net.run(&mut wl, 500);
            net.metrics_mut().reset_window();
            net.run(&mut wl, 3000);
            let m = net.metrics();
            [
                spec.name().to_string(),
                format!("{:.1}", m.class(0).mean_latency()),
                format!("{:.3}", m.throughput(0, 16)),
            ]
        });
    }
    let mut t = Table::new(["algorithm", "bg latency", "bg throughput"]);
    for row in jobs.run() {
        t.row(row);
    }
    println!("{}", t.render());
    println!("Expectation (paper): XORDET isolates best (thin static branches); Footprint");
    println!("beats the fully adaptive and deterministic baselines by regulating the");
    println!("hotspot flows onto footprint VCs.");
}
