//! Table 3: the hotspot traffic configuration, printed from the live flow
//! set used by the Figure 9 experiment.

use footprint_stats::Table;
use footprint_traffic::paper_flows;

fn main() {
    println!("Table 3 — hotspot traffic flows (8x8 mesh)\n");
    let mut t = Table::new(["flow", "source", "destination"]);
    for (i, f) in paper_flows().iter().enumerate() {
        t.row([
            format!("f{}", i + 1),
            f.src.to_string(),
            f.dest.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Background: uniform random at 0.30 flits/node/cycle from all other nodes.");
    println!("Latency is measured on the background traffic only (paper §4.2.5).");
}
