//! Dynamic-workload smoke test (run by CI).
//!
//! Three checks, each of which must pass for the binary to exit zero:
//!
//! 1. **Multi-tenant accounting under audit** — a sentinel-audited,
//!    whole-run-measured, drained bursty multi-tenant run must close the
//!    per-tenant books (`offered == delivered + in_flight + dropped`,
//!    with `in_flight == 0` after the drain), agree exactly with the
//!    per-class counters of the same report, and produce bit-identical
//!    reports under the dense and active-set schedulers. The outcome
//!    lines land in `results/burst_smoke.txt`.
//!
//! 2. **Modulated sweep determinism** — a bursty sweep run at one and at
//!    four worker threads, under both schedulers, must produce four
//!    bit-identical curves (the engine guarantee extended to modulated
//!    workloads, whose gate RNGs must not leak into the shared stream).
//!
//! 3. **Duty-cycle calibration** — a 50%-duty on/off workload at rate
//!    `r` must offer ≈ `r/2`: the modulator thins the workload, it does
//!    not merely reshape it.
//!
//! `FOOTPRINT_QUICK` shrinks the windows for CI.

use std::process::ExitCode;

use footprint_bench::results_dir;
use footprint_core::{
    DurationDist, ModulationSpec, RoutingSpec, RunOptions, Scheduler, SimulationBuilder,
    SweepOptions, TenantSpec, TrafficSpec,
};

fn quick() -> bool {
    std::env::var_os("FOOTPRINT_QUICK").is_some()
}

/// The workload under test: a bursty interactive tenant sharing the mesh
/// with a steadier batch tenant on a different pattern.
fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("web", TrafficSpec::UniformRandom, 0.20).modulation(ModulationSpec::OnOff {
            on: DurationDist::Geometric { mean: 40.0 },
            off: DurationDist::Geometric { mean: 40.0 },
        }),
        TenantSpec::new("batch", TrafficSpec::Transpose, 0.08),
    ]
}

fn builder() -> SimulationBuilder {
    let measurement = if quick() { 800 } else { 2_000 };
    SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .tenants(tenants())
        .warmup(0)
        .measurement(measurement)
        .drain(4_000)
        .seed(0xB027)
}

fn multi_tenant_accounting() -> Result<(), String> {
    let run = |scheduler: Scheduler| {
        builder()
            .run_with(
                RunOptions::new()
                    .sentinel(true)
                    .scheduler(scheduler)
                    .watchdog(20_000),
            )
            .map_err(|e| format!("bursty multi-tenant run failed: {e}"))
    };
    let report = run(Scheduler::Active)?;
    if run(Scheduler::Dense)? != report {
        return Err("dense and active-set schedulers disagree on a multi-tenant run".into());
    }

    let mut outcome = String::new();
    for (i, spec) in tenants().iter().enumerate() {
        let t = report
            .tenant(&spec.name)
            .ok_or_else(|| format!("tenant `{}` missing from the report", spec.name))?;
        if t.offered_packets == 0 || t.delivered_packets == 0 {
            return Err(format!("tenant `{}` saw no traffic", t.name));
        }
        // The whole-run window plus the drain closes the books exactly.
        if !t.fully_accounted() || t.in_flight() != 0 {
            return Err(format!(
                "tenant `{}` books do not close: offered {} != delivered {} + in-flight {} + dropped {}",
                t.name,
                t.offered_packets,
                t.delivered_packets,
                t.in_flight(),
                t.dropped_packets
            ));
        }
        // The tenant probe and the per-class metrics count the same
        // events through independent paths; they must agree exactly.
        let class = report.class(i as u8);
        if t.offered_packets != class.generated_packets || t.delivered_packets != class.ejected_packets
        {
            return Err(format!(
                "tenant `{}` disagrees with class {i} counters: offered {} vs generated {}, \
                 delivered {} vs ejected {}",
                t.name,
                t.offered_packets,
                class.generated_packets,
                t.delivered_packets,
                class.ejected_packets
            ));
        }
        let window_offered: u64 = t.windows.iter().map(|w| w.offered).sum();
        if window_offered != t.offered_packets {
            return Err(format!(
                "tenant `{}` windows lose packets: {window_offered} != {}",
                t.name, t.offered_packets
            ));
        }
        outcome.push_str(&format!(
            "TENANT {}: offered {} delivered {} dropped {} p50 {:?} p99 {:?}\n",
            t.name, t.offered_packets, t.delivered_packets, t.dropped_packets, t.p50_latency,
            t.p99_latency
        ));
    }

    let path = results_dir()
        .map_err(|e| format!("results dir: {e}"))?
        .join("burst_smoke.txt");
    std::fs::write(&path, &outcome).map_err(|e| format!("writing outcome: {e}"))?;
    println!("# burst_smoke: wrote {}", path.display());
    Ok(())
}

fn modulated_sweep_determinism() -> Result<(), String> {
    let rates = if quick() {
        vec![0.08, 0.2]
    } else {
        vec![0.08, 0.2, 0.32]
    };
    let b = SimulationBuilder::mesh(4)
        .vcs(4)
        .routing(RoutingSpec::Footprint)
        .traffic(TrafficSpec::UniformRandom)
        .modulation(ModulationSpec::OnOff {
            on: DurationDist::Fixed(60),
            off: DurationDist::Uniform { min: 20, max: 100 },
        })
        .warmup(100)
        .measurement(if quick() { 400 } else { 1_000 })
        .seed(0x5EED);
    let sweep = |threads: usize, scheduler: Scheduler| {
        b.sweep_with(
            &rates,
            SweepOptions::new()
                .threads(threads)
                .scheduler(scheduler)
                .watchdog(20_000),
        )
        .map_err(|e| format!("modulated sweep failed: {e}"))
    };
    let reference = sweep(1, Scheduler::Dense)?;
    for (threads, scheduler) in [
        (1, Scheduler::Active),
        (4, Scheduler::Dense),
        (4, Scheduler::Active),
    ] {
        if sweep(threads, scheduler)? != reference {
            return Err(format!(
                "modulated sweep diverged at {threads} thread(s) under {scheduler:?}"
            ));
        }
    }
    if reference.points.len() != rates.len() {
        return Err(format!("expected {} sweep points", rates.len()));
    }
    Ok(())
}

fn duty_cycle_calibration() -> Result<(), String> {
    let rate = 0.2;
    let measurement = if quick() { 2_000 } else { 6_000 };
    let run = |modulation: ModulationSpec| {
        SimulationBuilder::mesh(4)
            .vcs(4)
            .routing(RoutingSpec::Footprint)
            .traffic(TrafficSpec::UniformRandom)
            .injection_rate(rate)
            .modulation(modulation)
            .warmup(200)
            .measurement(measurement)
            .seed(0xD077)
            .run_with(RunOptions::new().watchdog(20_000))
            .map_err(|e| format!("calibration run failed: {e}"))
    };
    let steady = run(ModulationSpec::Steady)?;
    let bursty = run(ModulationSpec::OnOff {
        on: DurationDist::Fixed(75),
        off: DurationDist::Fixed(75),
    })?;
    let ratio = bursty.latency.generated_packets as f64 / steady.latency.generated_packets as f64;
    if (ratio - 0.5).abs() > 0.1 {
        return Err(format!(
            "50% duty at rate {rate} offered {ratio:.3}x the steady load (expected ≈ 0.5): \
             bursty {} vs steady {} packets",
            bursty.latency.generated_packets, steady.latency.generated_packets
        ));
    }
    println!(
        "# burst_smoke: 50% duty offered {ratio:.3}x the steady load \
         ({} vs {} packets)",
        bursty.latency.generated_packets, steady.latency.generated_packets
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut ok = true;
    for (name, result) in [
        ("multi-tenant accounting", multi_tenant_accounting()),
        ("modulated sweep determinism", modulated_sweep_determinism()),
        ("duty-cycle calibration", duty_cycle_calibration()),
    ] {
        match result {
            Ok(()) => println!("burst_smoke: {name} ok"),
            Err(e) => {
                eprintln!("burst_smoke: {name} FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
